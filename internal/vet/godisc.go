package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoDisc enforces goroutine discipline at the spawn sites that already exist
// (serve's worker pool and compare fan-out, core's study pool, loadgen's
// client fleet, the tmi3d CLI) and at every site the parallel PRs will add.
// It is deliberately shallow — lockorder proves the deep property (acyclic
// acquisition); godisc catches the shapes that are wrong on sight:
//
//   - stale capture: a go/defer closure inside a loop captures a variable
//     declared outside the loop that the loop body reassigns, so every
//     goroutine observes the final value instead of its iteration's;
//   - WaitGroup.Add placement: Add inside the spawned goroutine (or lexically
//     after Wait) races the Wait — the counter can hit zero before the
//     goroutine runs;
//   - send without receive: a goroutine sends on an unbuffered function-local
//     channel the function never receives from — if the receiver bails, the
//     goroutine blocks forever (the classic leak; a cap-1 channel like
//     cmd/tmi3d serve's done is the fix and is exempt);
//   - unlocked shared write: a per-iteration goroutine writes a captured
//     variable with no lock call in the closure and no per-spawn index
//     partition (res[i] with i a closure parameter is the sanctioned shape);
//   - unbounded spawn: a goroutine per element of a range loop with no
//     channel-semaphore or pool throttle in sight (core.RunAll's buffered
//     sem is the sanctioned shape; fixed-count worker loops are not ranges
//     and are exempt by construction).
//
// Findings are suppressed by an audited //tmi3dvet:godisc <reason> on the
// flagged line or the line above; godisc owns the directive's bare/stale
// audit.
//
// Soundness posture: purely lexical. A channel that escapes into another
// function, a lock held by the caller, or a semaphore hidden behind a helper
// all defeat the heuristics conservatively (escape and lock presence exempt;
// absence reports), so the analyzer errs toward silence on code it cannot
// see and toward noise only within one function body — where the fix or the
// suppression reason is local.
var GoDisc = &Analyzer{
	Name: "godisc",
	Doc:  "checks go/defer sites for capture, WaitGroup, leak and spawn-bound discipline",
	Run:  runGoDisc,
}

func runGoDisc(p *Pass) {
	sup := collectSuppressions(p, "godisc")
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoFunc(p, sup, fd)
		}
	}
	sup.reportStale(p, "goroutine-discipline finding")
}

// reportg reports unless a //tmi3dvet:godisc suppression covers the site.
func reportg(p *Pass, sup *suppressions, pos token.Pos, format string, args ...any) {
	if s := sup.at(p, pos); s != nil {
		return
	}
	p.Reportf(pos, format, args...)
}

// syncCall resolves a call on a sync primitive: the receiver's type name
// (WaitGroup, Mutex, RWMutex, Once, ...), the method, and the receiver
// expression. Promoted methods on embedded primitives resolve too.
func syncCall(p *Pass, call *ast.CallExpr) (typ, method string, base ast.Expr, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", nil, false
	}
	s := p.Pkg.Info.Selections[sel]
	if s == nil {
		return "", "", nil, false
	}
	f, isFn := s.Obj().(*types.Func)
	if !isFn || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", "", nil, false
	}
	sig, isSig := f.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", nil, false
	}
	named, isNamed := derefType(sig.Recv().Type()).(*types.Named)
	if !isNamed {
		return "", "", nil, false
	}
	return named.Obj().Name(), f.Name(), sel.X, true
}

// checkGoFunc runs all five checks over one function body.
func checkGoFunc(p *Pass, sup *suppressions, fd *ast.FuncDecl) {
	// One stack-tracking walk finds the spawn sites and the WaitGroup calls
	// with their lexical context.
	type wgCall struct {
		call    *ast.CallExpr
		obj     types.Object
		method  string
		spawned bool // lexically inside a go-statement closure
	}
	var wgCalls []wgCall
	var stack []ast.Node
	spawnedLits := map[*ast.FuncLit]bool{}
	ast.Inspect(fd, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				spawnedLits[lit] = true
			}
			checkSpawn(p, sup, fd, n, enclosingLoop(stack))
		case *ast.DeferStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				checkStaleCapture(p, sup, n.Pos(), "defer", lit, enclosingLoop(stack))
			}
		case *ast.CallExpr:
			typ, method, base, ok := syncCall(p, n)
			if !ok || typ != "WaitGroup" {
				break
			}
			inSpawn := false
			for _, anc := range stack {
				if lit, isLit := anc.(*ast.FuncLit); isLit && spawnedLits[lit] {
					inSpawn = true
				}
			}
			wgCalls = append(wgCalls, wgCall{call: n, obj: rootObj(p, base), method: method, spawned: inSpawn})
		}
		return true
	})

	// WaitGroup.Add placement: inside the spawned goroutine, or after Wait.
	for _, c := range wgCalls {
		if c.method != "Add" {
			continue
		}
		if c.spawned {
			reportg(p, sup, c.call.Pos(), "WaitGroup.Add inside the spawned goroutine races Wait: the counter can reach zero before this runs — Add before the go statement")
			continue
		}
		for _, w := range wgCalls {
			if w.method == "Wait" && w.obj != nil && w.obj == c.obj && w.call.Pos() < c.call.Pos() {
				reportg(p, sup, c.call.Pos(), "WaitGroup.Add after Wait on the same WaitGroup: Wait may have already released — restructure so every Add precedes the Wait")
				break
			}
		}
	}
}

// enclosingLoop returns the nearest for/range statement enclosing the top of
// the stack without crossing a function literal — a loop outside the closure
// that merely defines the spawn is not a spawn loop.
func enclosingLoop(stack []ast.Node) ast.Stmt {
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return n.(ast.Stmt)
		case *ast.FuncLit:
			return nil
		}
	}
	return nil
}

// checkSpawn runs the per-go-statement checks.
func checkSpawn(p *Pass, sup *suppressions, fd *ast.FuncDecl, g *ast.GoStmt, loop ast.Stmt) {
	lit, _ := g.Call.Fun.(*ast.FuncLit)

	// Unbounded spawn: one goroutine per element of a range with no channel
	// throttle anywhere in the loop body. Counted worker loops (3-clause
	// for) and ranges over channels are pool shapes, not fan-out.
	if rl, ok := loop.(*ast.RangeStmt); ok {
		overChan := false
		if t := p.TypeOf(rl.X); t != nil {
			_, overChan = t.Underlying().(*types.Chan)
		}
		if !overChan && !containsChanOp(rl.Body) {
			reportg(p, sup, g.Pos(), "goroutine per range element with no semaphore or pool in the loop: unbounded spawn — throttle with a buffered-channel semaphore (the core.RunAll shape) or a fixed worker pool")
		}
	}
	if lit == nil {
		return
	}

	checkStaleCapture(p, sup, g.Pos(), "go", lit, loop)

	// Unlocked shared write in a per-iteration goroutine.
	if loop != nil && !containsLockCall(p, lit.Body) {
		seen := map[types.Object]bool{}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			var target ast.Expr
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if n.Tok == token.DEFINE {
						if id, ok := lhs.(*ast.Ident); ok && p.Pkg.Info.Defs[id] != nil {
							continue
						}
					}
					checkSharedWrite(p, sup, lit, lhs, seen)
				}
				return true
			case *ast.IncDecStmt:
				target = n.X
			}
			if target != nil {
				checkSharedWrite(p, sup, lit, target, seen)
			}
			return true
		})
	}

	// Send-without-receive leak on an unbuffered function-local channel.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		v, ok := rootObj(p, send.Chan).(*types.Var)
		if !ok || v.Parent() == p.Pkg.Types.Scope() {
			return true
		}
		if v.Pos() <= fd.Body.Lbrace || v.Pos() >= fd.Body.Rbrace {
			return true // parameter or captured from further out: not ours to judge
		}
		if !madeUnbuffered(p, fd, v) || chanEscapes(p, fd, v) || receivedIn(p, fd, lit, v) {
			return true
		}
		reportg(p, sup, send.Pos(), "goroutine sends on unbuffered %s but %s never receives: if the receive path bails first the goroutine blocks forever — buffer the channel (cap 1) or guarantee the receive", v.Name(), fd.Name.Name)
		return true
	})
}

// checkStaleCapture flags a closure capturing a variable the enclosing loop
// body reassigns: every execution observes the final value.
func checkStaleCapture(p *Pass, sup *suppressions, pos token.Pos, kind string, lit *ast.FuncLit, loop ast.Stmt) {
	if loop == nil {
		return
	}
	body := loopBody(loop)
	if body == nil {
		return
	}
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, isVar := p.Pkg.Info.Uses[id].(*types.Var)
		if !isVar || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() > lit.Pos() && v.Pos() < lit.End() {
			return true // closure-local
		}
		if v.Pos() > loop.Pos() && v.Pos() < loop.End() {
			return true // per-iteration (go1.22 loop vars included)
		}
		if v.Parent() == p.Pkg.Types.Scope() {
			return true // package state: globalmut/lockorder territory
		}
		if !assignedOutsideLit(p, body, lit, v) {
			return true
		}
		seen[v] = true
		reportg(p, sup, pos, "%s closure captures %s, which the loop body reassigns: the closure observes the last value, not this iteration's — pass it as an argument or declare it inside the loop", kind, v.Name())
		return true
	})
}

// checkSharedWrite flags one write inside a spawned closure whose target is
// rooted outside the closure and not partitioned by a closure-local index.
func checkSharedWrite(p *Pass, sup *suppressions, lit *ast.FuncLit, target ast.Expr, seen map[types.Object]bool) {
	v, ok := rootObj(p, unwrapWriteTarget(target)).(*types.Var)
	if !ok || seen[v] {
		return
	}
	if v.Pos() > lit.Pos() && v.Pos() < lit.End() {
		return // closure-local
	}
	if indexedByClosureLocal(p, lit, target) {
		return // res[i] with i a closure parameter: per-spawn partition
	}
	seen[v] = true
	reportg(p, sup, target.Pos(), "goroutine closure writes captured %s with no lock in the closure: spawned per iteration, these writes race — guard with a mutex or partition by a per-spawn index", v.Name())
}

// indexedByClosureLocal reports whether an index on the target's access path
// is a closure-local value (parameter or local of lit) — each spawn gets its
// own element.
func indexedByClosureLocal(p *Pass, lit *ast.FuncLit, target ast.Expr) bool {
	found := false
	ast.Inspect(target, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		ast.Inspect(ix.Index, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if v, isVar := p.Pkg.Info.Uses[id].(*types.Var); isVar {
					if v.Pos() > lit.Pos() && v.Pos() < lit.End() {
						found = true
					}
				}
			}
			return true
		})
		return true
	})
	return found
}

func loopBody(loop ast.Stmt) *ast.BlockStmt {
	switch l := loop.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// assignedOutsideLit reports whether the loop body rebinds v (bare assign or
// inc/dec) outside the closure itself.
func assignedOutsideLit(p *Pass, body *ast.BlockStmt, lit *ast.FuncLit, v *types.Var) bool {
	hit := false
	ast.Inspect(body, func(n ast.Node) bool {
		if n == lit {
			return false
		}
		check := func(e ast.Expr) {
			if id, ok := e.(*ast.Ident); ok && p.ObjectOf(id) == v {
				hit = true
			}
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(n.X)
		}
		return true
	})
	return hit
}

// containsChanOp reports whether the block performs any channel send or
// receive — the lexical signature of a semaphore or work-channel throttle.
func containsChanOp(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		}
		return true
	})
	return found
}

// containsLockCall reports whether the block calls Lock/RLock on a sync
// mutex — the lexical signature of guarded shared writes (lockorder verifies
// the pairing and ordering).
func containsLockCall(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if typ, method, _, ok := syncCall(p, call); ok {
			if (typ == "Mutex" || typ == "RWMutex") && (method == "Lock" || method == "RLock") {
				found = true
			}
		}
		return true
	})
	return found
}

// madeUnbuffered reports whether v is provably created as make(chan T) with
// no capacity inside fd. Unknown construction is treated as buffered —
// silence over noise.
func madeUnbuffered(p *Pass, fd *ast.FuncDecl, v *types.Var) bool {
	unbuffered := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || p.ObjectOf(id) != v || i >= len(as.Rhs) && len(as.Rhs) != 1 {
				continue
			}
			ri := i
			if len(as.Rhs) == 1 {
				ri = 0
			}
			if call, ok := as.Rhs[ri].(*ast.CallExpr); ok && isBuiltin(p, call, "make") {
				unbuffered = len(call.Args) == 1
			}
		}
		return true
	})
	return unbuffered
}

// chanEscapes reports whether v is handed to any non-builtin call — once it
// escapes, a receive elsewhere is possible and the leak check stands down.
func chanEscapes(p *Pass, fd *ast.FuncDecl, v *types.Var) bool {
	escapes := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBuiltin(p, call, "close") || isBuiltin(p, call, "len") || isBuiltin(p, call, "cap") || isBuiltin(p, call, "make") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && p.ObjectOf(id) == v {
				escapes = true
			}
		}
		return true
	})
	return escapes
}

// receivedIn reports whether fd receives from v anywhere outside the sending
// closure: <-v, range v, or a select case.
func receivedIn(p *Pass, fd *ast.FuncDecl, lit *ast.FuncLit, v *types.Var) bool {
	received := false
	matches := func(e ast.Expr) bool {
		return rootObj(p, e) == types.Object(v)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == lit {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && matches(n.X) {
				received = true
			}
		case *ast.RangeStmt:
			if matches(n.X) {
				received = true
			}
		}
		return true
	})
	return received
}
