package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxDisc polices the serving/store/engine packages — the surfaces ROADMAP
// item 2 multiplies across a node fleet — for the cancellation and resource
// classes that are merely annoying in one process and fatal at fleet scale:
//
//   - a spawned goroutine with no cancellation path at all: no context in its
//     body, no channel operation or select, no WaitGroup — nothing a drain
//     can reach;
//   - a context.Context parameter accepted but never used: callers believe
//     cancellation propagates and it silently stops here;
//   - time.Sleep inside a context-bearing function (a sleep ignores ctx; a
//     timer select does not);
//   - timer leaks: time.After in a loop (one unstoppable timer allocation per
//     iteration) and time.NewTimer/NewTicker values that are never stopped;
//   - handles not closed on every path: files, response bodies, and listeners
//     tracked branch-sensitively through the err-check idiom, so a
//     `if err != nil || resp.StatusCode != 200 { return }` that skips Close
//     on the non-error half of the disjunction is a diagnostic;
//   - blocking I/O while holding a mutex (the PR 4 AB-BA class upgraded to
//     "held across fsync/network"): disk and network calls — direct or
//     through module-local callees, summarized transitively — flagged while
//     any sync.Mutex/RWMutex is lexically held.
//
// Findings are suppressed by an audited //tmi3dvet:ctxdisc <reason> on the
// flagged line or the line above; ctxdisc owns the directive's bare/stale
// audit.
//
// Soundness posture: lexical and path-local, tuned toward silence outside
// what it can see. A handle released by a helper, a cancellation woven
// through a struct field, or I/O hidden behind an interface method all
// stand down the checks (escape exempts; interface dispatch is not
// summarized), so reports stay confined to one function body where the fix
// or the suppression reason is local. The err-branch model releases a handle
// only on an exact `err != nil` / `err == nil` condition — compound
// conditions deliberately do not release, because a disjunction that mixes
// the error check with a status check is exactly the shape that leaks the
// body on the non-error arm.
var CtxDisc = &Analyzer{
	Name: "ctxdisc",
	Doc:  "cancellation and resource discipline in serve/castore/stage/loadgen: orphan goroutines, dropped contexts, timer and handle leaks, lock-held I/O",
	Run:  runCtxDisc,
}

func runCtxDisc(p *Pass) {
	if !CtxScoped(p.Pkg.Path) {
		return
	}
	sup := collectSuppressions(p, "ctxdisc")
	io := newIOSummary(p.Mod)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFunc(p, sup, fd)
			checkTimers(p, sup, fd)
			checkHandles(p, sup, fd)
			checkLockHeldIO(p, sup, io, fd)
		}
	}
	sup.reportStale(p, "cancellation/resource finding")
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// pkgFuncCall resolves a package-qualified call (pkg.Fn(...)) to its import
// path and function name.
func pkgFuncCall(pkg *Package, call *ast.CallExpr) (path, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := pkg.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// checkCtxFunc runs the spawn-cancellation and context-threading checks.
func checkCtxFunc(p *Pass, sup *suppressions, fd *ast.FuncDecl) {
	// Context parameters: collect them, then count uses in the body.
	var ctxParams []*types.Var
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := p.Pkg.Info.Defs[name].(*types.Var); ok && isContextType(v.Type()) {
					ctxParams = append(ctxParams, v)
				}
			}
		}
	}
	used := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := p.Pkg.Info.Uses[id].(*types.Var); ok {
			used[v] = true
		}
		return true
	})
	for _, v := range ctxParams {
		if !used[v] && v.Name() != "_" {
			reportc(p, sup, v.Pos(), "%s accepts a context.Context it never uses: callers believe cancellation propagates and it silently stops here — thread %s to the blocking calls or drop the parameter", fd.Name.Name, v.Name())
		}
	}

	bodies := funcBodies(p)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			var body *ast.BlockStmt
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				body = lit.Body
			} else if callee := staticCalleeOf(p, n.Call); callee != nil && callee.Pkg() == p.Pkg.Types {
				body = bodies[callee]
			}
			if body != nil && !hasCancelPath(p, body) {
				reportc(p, sup, n.Pos(), "goroutine has no cancellation path: no context, channel operation, select, or WaitGroup in its body — nothing a drain or shutdown can reach; thread a ctx or a done channel")
			}
		case *ast.CallExpr:
			if path, name, ok := pkgFuncCall(p.Pkg, n); ok && path == "time" && name == "Sleep" && len(ctxParams) > 0 {
				reportc(p, sup, n.Pos(), "time.Sleep in context-bearing %s ignores cancellation: the caller's deadline passes and this keeps sleeping — select on a timer and ctx.Done() instead", fd.Name.Name)
			}
		}
		return true
	})
}

// hasCancelPath reports whether a goroutine body contains anything a
// shutdown can reach: a context value, a channel operation or select, or
// WaitGroup bookkeeping (a bounded task that signals completion).
func hasCancelPath(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := p.TypeOf(n.X); t != nil {
				if _, overChan := t.Underlying().(*types.Chan); overChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if typ, method, _, ok := syncCall(p, n); ok && typ == "WaitGroup" && (method == "Done" || method == "Wait") {
				found = true
			}
		case ast.Expr:
			if t := p.TypeOf(n); t != nil && isContextType(t) {
				found = true
			}
		}
		return !found
	})
	return found
}

// reportc reports unless a //tmi3dvet:ctxdisc suppression covers the site.
func reportc(p *Pass, sup *suppressions, pos token.Pos, format string, args ...any) {
	if s := sup.at(p, pos); s != nil {
		return
	}
	p.Reportf(pos, format, args...)
}

// checkTimers flags time.After in loops and NewTimer/NewTicker values that
// are never stopped.
func checkTimers(p *Pass, sup *suppressions, fd *ast.FuncDecl) {
	var stack []ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			if path, name, ok := pkgFuncCall(p.Pkg, n); ok && path == "time" && name == "After" && enclosingLoop(stack) != nil {
				reportc(p, sup, n.Pos(), "time.After inside a loop allocates an unstoppable timer every iteration: under sustained load that is an unbounded leak until each duration expires — hoist one time.NewTimer and Reset it")
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				path, name, ok := pkgFuncCall(p.Pkg, call)
				if !ok || path != "time" || (name != "NewTimer" && name != "NewTicker") {
					continue
				}
				if i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.ObjectOf(id)
				if obj == nil || timerStoppedOrEscapes(p, fd, obj) {
					continue
				}
				reportc(p, sup, call.Pos(), "time.%s result %s is never stopped in %s: the timer fires into a dead channel and holds its runtime entry — defer %s.Stop()", name, id.Name, fd.Name.Name, id.Name)
			}
		}
		return true
	})
}

// timerStoppedOrEscapes reports whether obj has a .Stop() call anywhere in fd
// or escapes the function (returned or passed onward), which stands the
// check down.
func timerStoppedOrEscapes(p *Pass, fd *ast.FuncDecl, obj types.Object) bool {
	done := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Stop" && rootObj(p, sel.X) == obj {
				done = true
				return false
			}
			for _, arg := range n.Args {
				if id, ok := arg.(*ast.Ident); ok && p.ObjectOf(id) == obj {
					done = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id, ok := res.(*ast.Ident); ok && p.ObjectOf(id) == obj {
					done = true
					return false
				}
			}
		}
		return true
	})
	return done
}

// ---- handle leaks -------------------------------------------------------

// handle is one open resource being tracked along the current path.
type handle struct {
	obj      types.Object // the variable holding the handle
	err      types.Object // the paired error variable, if any
	kind     string       // "file", "response body", "listener"
	what     string       // the acquiring call, for the message
	pos      token.Pos
	deferred bool  // a defer closes it: safe on every path
	reported *bool // shared across path clones: report each acquisition once
}

type heldHandles map[types.Object]*handle

func (h heldHandles) clone() heldHandles {
	c := make(heldHandles, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// acquireKind classifies a call that opens a trackable resource.
func acquireKind(p *Pass, call *ast.CallExpr) (kind, what string, ok bool) {
	if path, name, isPkg := pkgFuncCall(p.Pkg, call); isPkg {
		switch {
		case path == "os" && (name == "Open" || name == "Create" || name == "CreateTemp" || name == "OpenFile"):
			return "file", "os." + name, true
		case path == "net" && name == "Listen":
			return "listener", "net." + name, true
		case path == "net/http" && (name == "Get" || name == "Post" || name == "Head" || name == "PostForm"):
			return "response body", "http." + name, true
		}
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	s := p.Pkg.Info.Selections[sel]
	if s == nil {
		return "", "", false
	}
	f, isFn := s.Obj().(*types.Func)
	if !isFn || f.Pkg() == nil || f.Pkg().Path() != "net/http" {
		return "", "", false
	}
	recv, isNamed := derefType(s.Recv()).(*types.Named)
	if !isNamed || recv.Obj().Name() != "Client" {
		return "", "", false
	}
	switch f.Name() {
	case "Get", "Post", "Do", "Head", "PostForm":
		return "response body", "Client." + f.Name(), true
	}
	return "", "", false
}

// checkHandles walks fd branch-sensitively and reports handles that reach a
// function exit, or the end of a loop iteration, without a Close.
func checkHandles(p *Pass, sup *suppressions, fd *ast.FuncDecl) {
	end := walkHandleStmts(p, sup, fd.Body.List, heldHandles{}, nil)
	reportLeaks(p, sup, end, nil, fd.Body.Rbrace, "the end of "+fd.Name.Name)
}

// reportLeaks reports every handle in held (minus those already in base)
// that is neither deferred-closed nor already reported.
func reportLeaks(p *Pass, sup *suppressions, held, base heldHandles, at token.Pos, exit string) {
	if held == nil {
		return
	}
	for obj, h := range held {
		if h.deferred || *h.reported {
			continue
		}
		if base != nil {
			if _, ok := base[obj]; ok {
				continue
			}
		}
		*h.reported = true
		line := p.Mod.Fset.Position(at).Line
		reportc(p, sup, h.pos, "%s from %s is not closed on the path reaching %s (line %d): under load each miss pins a connection or descriptor — close it on every path, including error branches", h.kind, h.what, exit, line)
	}
}

// errNilCond matches an exact `x != nil` / `x == nil` condition and returns
// the compared object. Compound conditions return nil on purpose: a
// disjunction mixing the error check with anything else must not release the
// handle — that is the leaking shape this analyzer exists to catch.
func errNilCond(p *Pass, cond ast.Expr) (obj types.Object, isEq bool) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return nil, false
	}
	classify := func(e ast.Expr) (types.Object, bool) { // (obj, isNil)
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil, false
		}
		obj := p.ObjectOf(id)
		if _, isNil := obj.(*types.Nil); isNil {
			return nil, true
		}
		return obj, false
	}
	lo, ln := classify(be.X)
	ro, rn := classify(be.Y)
	switch {
	case lo != nil && rn:
		return lo, be.Op == token.EQL
	case ro != nil && ln:
		return ro, be.Op == token.EQL
	}
	return nil, false
}

// walkHandleStmts walks one statement list, threading the held-handle set.
// A nil return means the path terminated (return/break/continue/fatal).
// loopEntry, when non-nil, is the held set at loop entry: handles acquired
// inside the loop must be gone again by the end of each iteration.
func walkHandleStmts(p *Pass, sup *suppressions, stmts []ast.Stmt, held, loopEntry heldHandles) heldHandles {
	for _, stmt := range stmts {
		held = walkHandleStmt(p, sup, stmt, held, loopEntry)
		if held == nil {
			return nil
		}
	}
	return held
}

func walkHandleStmt(p *Pass, sup *suppressions, stmt ast.Stmt, held, loopEntry heldHandles) heldHandles {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		scanHandleOps(p, sup, s, held)
		// Acquisition: h, err := open(...). A rebound still-open handle is
		// replaced silently — path sensitivity already reported the paths
		// that mattered.
		if len(s.Rhs) == 1 && len(s.Lhs) >= 1 {
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
				if kind, what, ok := acquireKind(p, call); ok {
					if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
						h := &handle{obj: p.ObjectOf(id), kind: kind, what: what, pos: call.Pos(), reported: new(bool)}
						if len(s.Lhs) == 2 {
							if eid, ok := s.Lhs[1].(*ast.Ident); ok && eid.Name != "_" {
								h.err = p.ObjectOf(eid)
							}
						}
						if h.obj != nil {
							held[h.obj] = h
						}
					}
				}
			}
		}
		return held
	case *ast.ExprStmt:
		if isTerminatingCall(p, s.X) {
			return nil
		}
		scanHandleOps(p, sup, s, held)
		return held
	case *ast.DeferStmt:
		// defer h.Close(), defer resp.Body.Close(), or a defer closure that
		// closes the handle somewhere in its body.
		for obj, h := range held {
			closes := callCloses(p, s.Call, obj)
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok && !closes {
				ast.Inspect(lit.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok && callCloses(p, call, obj) {
						closes = true
					}
					return !closes
				})
			}
			if closes {
				h.deferred = true
			}
		}
		return held
	case *ast.ReturnStmt:
		scanHandleOps(p, sup, s, held) // return consume(f) hands the handle off
		for _, res := range s.Results {
			releaseEscapes(p, res, held)
		}
		reportLeaks(p, sup, held, nil, s.Pos(), "the return")
		return nil
	case *ast.IfStmt:
		if s.Init != nil {
			held = walkHandleStmt(p, sup, s.Init, held, loopEntry)
			if held == nil {
				return nil
			}
		}
		thenHeld, elseHeld := held.clone(), held.clone()
		if obj, isEq := errNilCond(p, s.Cond); obj != nil {
			for k, h := range held {
				if h.err == obj {
					if isEq {
						delete(elseHeld, k) // err == nil: else-arm is the failed acquire
					} else {
						delete(thenHeld, k) // err != nil: then-arm is the failed acquire
					}
				}
			}
		}
		t := walkHandleStmts(p, sup, s.Body.List, thenHeld, loopEntry)
		e := elseHeld
		if s.Else != nil {
			e = walkHandleStmt(p, sup, s.Else, elseHeld, loopEntry)
		}
		return mergeHeld(t, e)
	case *ast.BlockStmt:
		return walkHandleStmts(p, sup, s.List, held, loopEntry)
	case *ast.ForStmt:
		if s.Init != nil {
			held = walkHandleStmt(p, sup, s.Init, held, loopEntry)
			if held == nil {
				return nil
			}
		}
		entry := held.clone()
		end := walkHandleStmts(p, sup, s.Body.List, held.clone(), entry)
		reportLeaks(p, sup, end, entry, s.Body.Rbrace, "the next iteration")
		return entry
	case *ast.RangeStmt:
		releaseEscapes(p, s.X, held)
		entry := held.clone()
		end := walkHandleStmts(p, sup, s.Body.List, held.clone(), entry)
		reportLeaks(p, sup, end, entry, s.Body.Rbrace, "the next iteration")
		return entry
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE {
			reportLeaks(p, sup, held, loopEntry, s.Pos(), "the next iteration")
		}
		return nil
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return walkHandleClauses(p, sup, s, held, loopEntry)
	case *ast.LabeledStmt:
		return walkHandleStmt(p, sup, s.Stmt, held, loopEntry)
	case *ast.GoStmt:
		// The handle escapes into the spawned goroutine: its lifetime is no
		// longer this path's to judge.
		ast.Inspect(s.Call, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				delete(held, p.ObjectOf(id))
			}
			return true
		})
		return held
	default:
		scanHandleOps(p, sup, stmt, held)
		return held
	}
}

// walkHandleClauses walks each case body of a switch/select with its own
// clone and merges the continuing paths.
func walkHandleClauses(p *Pass, sup *suppressions, stmt ast.Stmt, held, loopEntry heldHandles) heldHandles {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = walkHandleStmt(p, sup, s.Init, held, loopEntry)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	if held == nil || body == nil {
		return held
	}
	var out heldHandles
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			stmts = c.Body
		}
		out = mergeHeld(out, walkHandleStmts(p, sup, stmts, held.clone(), loopEntry))
	}
	if _, isSwitch := stmt.(*ast.SwitchStmt); isSwitch && !hasDefault {
		out = mergeHeld(out, held) // no case may match: fall through still holds
	}
	return out
}

func mergeHeld(a, b heldHandles) heldHandles {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	for k, v := range b {
		a[k] = v
	}
	return a
}

// scanHandleOps scans one statement for Close calls and escapes of held
// handles, skipping function literals (their execution is not this path).
func scanHandleOps(p *Pass, sup *suppressions, stmt ast.Stmt, held heldHandles) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// A closure capturing the handle takes over its lifetime.
			ast.Inspect(n, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					delete(held, p.ObjectOf(id))
				}
				return true
			})
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for obj := range held {
			if callCloses(p, call, obj) {
				delete(held, obj)
				return true
			}
		}
		for _, arg := range call.Args {
			releaseEscapes(p, arg, held)
		}
		return true
	})
}

// callCloses reports whether call is a Close() on a selector chain rooted at
// obj — h.Close(), resp.Body.Close(), ln.Close() all count.
func callCloses(p *Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return false
	}
	return rootObj(p, sel.X) == obj
}

// releaseEscapes drops any handle whose bare identifier appears as e — once
// a handle is handed onward or returned, its close is someone else's
// contract.
func releaseEscapes(p *Pass, e ast.Expr, held heldHandles) {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = pe.X
	}
	if id, ok := e.(*ast.Ident); ok {
		delete(held, p.ObjectOf(id))
	}
}

// isTerminatingCall reports a call that never returns: the path ends without
// the handles leaking anywhere observable.
func isTerminatingCall(p *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if isBuiltin(p, call, "panic") {
		return true
	}
	path, name, ok := pkgFuncCall(p.Pkg, call)
	if !ok {
		return false
	}
	return (path == "os" && name == "Exit") ||
		(path == "log" && (name == "Fatal" || name == "Fatalf" || name == "Fatalln"))
}

// ---- lock-held I/O ------------------------------------------------------

// funcBody pairs a function body with the package whose type info resolves
// its expressions.
type funcBody struct {
	body *ast.BlockStmt
	pkg  *Package
}

// ioSummary is a module-wide, memoized does-this-function-touch-disk-or-
// network summary.
type ioSummary struct {
	bodies  map[*types.Func]funcBody
	memo    map[*types.Func]bool
	walking map[*types.Func]bool // cycle guard: recursion resolves to false
}

func newIOSummary(mod *Module) *ioSummary {
	io := &ioSummary{
		bodies:  map[*types.Func]funcBody{},
		memo:    map[*types.Func]bool{},
		walking: map[*types.Func]bool{},
	}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					io.bodies[fn] = funcBody{body: fd.Body, pkg: pkg}
				}
			}
		}
	}
	return io
}

// ioPure names stdlib calls in the I/O packages that never block on disk or
// network — error predicates, env lookups, string splitters, constructors.
var ioPure = map[string]bool{
	"os.IsNotExist": true, "os.IsExist": true, "os.IsPermission": true,
	"os.IsTimeout": true, "os.Getenv": true, "os.Getpid": true,
	"os.TempDir": true, "os.Exit": true,
	"net.JoinHostPort": true, "net.SplitHostPort": true,
	"net/http.StatusText": true, "net/http.CanonicalHeaderKey": true,
	"net/http.NewRequest": true, "net/http.NewRequestWithContext": true,
	"net/http.NotFound": true, "net/http.Error": true,
}

var ioPkgs = map[string]bool{"os": true, "net": true, "net/http": true}

// ioPrimitive classifies a call as directly touching disk or network: a
// package-level call into os/net/net/http (minus the pure helpers), a
// filepath tree walk, or a method on a type from those packages.
func ioPrimitive(pkg *Package, call *ast.CallExpr) (string, bool) {
	if path, name, ok := pkgFuncCall(pkg, call); ok {
		if path == "path/filepath" && (name == "Walk" || name == "WalkDir" || name == "Glob") {
			return "filepath." + name, true
		}
		if ioPkgs[path] && !ioPure[path+"."+name] {
			return path + "." + name, true
		}
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s := pkg.Info.Selections[sel]
	if s == nil {
		return "", false
	}
	f, ok := s.Obj().(*types.Func)
	if !ok || f.Pkg() == nil || !ioPkgs[f.Pkg().Path()] {
		return "", false
	}
	if named, ok := derefType(s.Recv()).(*types.Named); ok {
		return named.Obj().Name() + "." + f.Name(), true
	}
	return f.Name(), true
}

// pkgStaticCallee is staticCalleeOf for an arbitrary module package.
func pkgStaticCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if s := pkg.Info.Selections[fun]; s != nil {
			f, _ := s.Obj().(*types.Func)
			return f
		}
		if f, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// doesIO reports whether fn (transitively through module-local callees)
// performs blocking disk or network I/O.
func (io *ioSummary) doesIO(fn *types.Func) bool {
	if v, ok := io.memo[fn]; ok {
		return v
	}
	if io.walking[fn] {
		return false
	}
	fb, ok := io.bodies[fn]
	if !ok {
		return false // no body in this module: interface or stdlib, not summarized
	}
	io.walking[fn] = true
	result := false
	ast.Inspect(fb.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !result
		}
		if _, isIO := ioPrimitive(fb.pkg, call); isIO {
			result = true
		} else if callee := pkgStaticCallee(fb.pkg, call); callee != nil && io.doesIO(callee) {
			result = true
		}
		return !result
	})
	delete(io.walking, fn)
	io.memo[fn] = result
	return result
}

// checkLockHeldIO flags blocking I/O performed while a mutex is lexically
// held.
func checkLockHeldIO(p *Pass, sup *suppressions, io *ioSummary, fd *ast.FuncDecl) {
	lockWalkStmts(p, sup, io, fd.Body.List, map[string]token.Pos{})
}

func lockWalkStmts(p *Pass, sup *suppressions, io *ioSummary, stmts []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range stmts {
		lockWalkStmt(p, sup, io, stmt, held)
	}
}

func cloneLocks(held map[string]token.Pos) map[string]token.Pos {
	c := make(map[string]token.Pos, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func lockWalkStmt(p *Pass, sup *suppressions, io *ioSummary, stmt ast.Stmt, held map[string]token.Pos) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		lockWalkStmts(p, sup, io, s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			lockWalkStmt(p, sup, io, s.Init, held)
		}
		lockCheckCalls(p, sup, io, s.Cond, held)
		lockWalkStmts(p, sup, io, s.Body.List, cloneLocks(held))
		if s.Else != nil {
			lockWalkStmt(p, sup, io, s.Else, cloneLocks(held))
		}
	case *ast.ForStmt:
		inner := cloneLocks(held)
		if s.Init != nil {
			lockWalkStmt(p, sup, io, s.Init, inner)
		}
		if s.Cond != nil {
			lockCheckCalls(p, sup, io, s.Cond, inner)
		}
		lockWalkStmts(p, sup, io, s.Body.List, inner)
	case *ast.RangeStmt:
		lockCheckCalls(p, sup, io, s.X, held)
		lockWalkStmts(p, sup, io, s.Body.List, cloneLocks(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			lockWalkStmt(p, sup, io, s.Init, held)
		}
		if s.Tag != nil {
			lockCheckCalls(p, sup, io, s.Tag, held)
		}
		lockWalkClauses(p, sup, io, s.Body, held)
	case *ast.TypeSwitchStmt:
		lockWalkClauses(p, sup, io, s.Body, held)
	case *ast.SelectStmt:
		lockWalkClauses(p, sup, io, s.Body, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end (correctly —
		// every subsequent statement runs under it); any other deferred work
		// runs after this walk's scope and is not judged here.
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the spawner's locks.
	case *ast.LabeledStmt:
		lockWalkStmt(p, sup, io, s.Stmt, held)
	default:
		if stmt != nil {
			lockCheckCalls(p, sup, io, stmt, held)
		}
	}
}

func lockWalkClauses(p *Pass, sup *suppressions, io *ioSummary, body *ast.BlockStmt, held map[string]token.Pos) {
	if body == nil {
		return
	}
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			stmts = c.Body
		case *ast.CommClause:
			stmts = c.Body
		}
		lockWalkStmts(p, sup, io, stmts, cloneLocks(held))
	}
}

// lockCheckCalls scans one node for lock transitions and, while any lock is
// held, for I/O calls — direct primitives or module-local callees whose
// summary says they touch disk or network.
func lockCheckCalls(p *Pass, sup *suppressions, io *ioSummary, node ast.Node, held map[string]token.Pos) {
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // runs later, without these locks
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if typ, method, base, ok := syncCall(p, call); ok && (typ == "Mutex" || typ == "RWMutex") {
			key := types.ExprString(base)
			switch method {
			case "Lock", "RLock":
				held[key] = call.Pos()
			case "Unlock", "RUnlock":
				delete(held, key)
			}
			return true
		}
		if len(held) == 0 {
			return true
		}
		what, isIO := ioPrimitive(p.Pkg, call)
		if !isIO {
			if callee := pkgStaticCallee(p.Pkg, call); callee != nil && io.doesIO(callee) {
				what, isIO = callee.Name(), true
			}
		}
		if isIO {
			var lock string
			var lockPos token.Pos
			for k, pos := range held {
				if lock == "" || pos > lockPos {
					lock, lockPos = k, pos
				}
			}
			reportc(p, sup, call.Pos(), "blocking I/O (%s) while holding %s (locked at line %d): every other goroutine contending for the lock stalls behind the disk or network — release before the call or move the I/O out", what, lock, p.Mod.Fset.Position(lockPos).Line)
		}
		return true
	})
}
