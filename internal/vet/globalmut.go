package vet

import (
	"sort"
)

// GlobalMut flags reads and writes of mutable package-level state in the
// flow-deterministic packages (plus internal/flow, which owns the process
// caches). Package-level state shared across flow runs is exactly where one
// config's history can leak into another's result: the bug class is a cache
// entry mutated after publication, which silently couples every config that
// shares the entry — undetectable by per-flow determinism tests because each
// process still agrees with itself.
//
// An access is accepted without annotation only when the classifier
// (globalstate.go) can prove the variable is one of:
//
//   - read-only after initialization (constant tables);
//   - a sync primitive (Mutex/RWMutex/Once/WaitGroup);
//   - once-published: every write sits inside a sync.Once.Do callback, and
//     every read sits in a function that synchronizes on a sync.Once — the
//     flow.LibraryCheck shape;
//   - a key-addressed once-cell map: a map of *entry structs each carrying a
//     sync.Once, written only under a mutex, whose payload fields are
//     written only inside the entry's Once.Do — the liberty.Default /
//     flow.generated shape.
//
// Anything else needs a //tmi3dvet:global <reason> suppression on the access
// line (or the line above). Bare and stale suppressions are diagnostics, as
// everywhere in this suite.
var GlobalMut = &Analyzer{
	Name: "globalmut",
	Doc:  "flags mutable package-level state outside key-addressed sync.Once shapes",
	Run:  runGlobalMut,
}

func runGlobalMut(p *Pass) {
	if !GlobalStateScoped(p.Pkg.Path) {
		return
	}
	sup := collectSuppressions(p, "global")
	gs := classifyGlobals(p)
	for _, v := range gs.order {
		info := gs.vars[v]
		switch info.class {
		case gcMutable:
			for _, w := range info.badWrites {
				if sup.at(p, w.pos) != nil {
					continue
				}
				p.Reportf(w.pos, "package-level %s written after initialization: mutable global state couples flow runs; make it key-addressed behind a sync.Once (the liberty.Default shape) or annotate //tmi3dvet:global <reason>", v.Name())
			}
			for _, r := range info.reads {
				if sup.at(p, r.pos) != nil {
					continue
				}
				p.Reportf(r.pos, "read of mutable package-level %s: its value depends on which flows ran before, so results are not a function of Config; make it key-addressed or annotate //tmi3dvet:global <reason>", v.Name())
			}
		case gcOncePublished:
			for _, r := range info.reads {
				if r.inDoLit || (r.fn != nil && gs.fnFacts[r.fn].callsOnceDo) {
					continue
				}
				if sup.at(p, r.pos) != nil {
					continue
				}
				p.Reportf(r.pos, "read of once-published %s in a function that never synchronizes on its sync.Once: the read can observe the unpublished zero value; call the Once.Do accessor instead or annotate //tmi3dvet:global <reason>", v.Name())
			}
		case gcGuardedMap:
			for _, r := range info.reads {
				if r.fn != nil && gs.fnFacts[r.fn].locksMutex {
					continue
				}
				if sup.at(p, r.pos) != nil {
					continue
				}
				p.Reportf(r.pos, "read of once-cell map %s outside a mutex-holding function: unsynchronized map access races with entry insertion; access it through the locked accessor or annotate //tmi3dvet:global <reason>", v.Name())
			}
		}
	}
	// Once-cell payload discipline, independent of how the entry was reached:
	// writes only inside the entry's Once.Do, reads only where a Once.Do
	// publication point is in scope.
	accs := append([]entryAccess(nil), gs.entryAccesses...)
	sort.Slice(accs, func(i, j int) bool { return accs[i].pos < accs[j].pos })
	for _, a := range accs {
		if a.write {
			if a.inDoLit {
				continue
			}
			if sup.at(p, a.pos) != nil {
				continue
			}
			p.Reportf(a.pos, "field %s of once-cell %s written outside its sync.Once.Do: a cache entry mutated after publication silently couples every config sharing it; move the write into the Do callback or annotate //tmi3dvet:global <reason>", a.field, a.typeName)
			continue
		}
		if a.inDoLit || (a.fn != nil && gs.fnFacts[a.fn].callsOnceDo) {
			continue
		}
		if sup.at(p, a.pos) != nil {
			continue
		}
		p.Reportf(a.pos, "read of once-cell field %s.%s in a function that never calls a sync.Once.Do: the payload may not be published yet; read it behind the entry's Once or annotate //tmi3dvet:global <reason>", a.typeName, a.field)
	}
	sup.reportStale(p, "mutable global access")
}
