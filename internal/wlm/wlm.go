// Package wlm implements wire load models — the statistical net-length
// estimates that guide synthesis optimization (Section 3.4). A model maps a
// net's fanout to an expected wirelength, from which unit-length R/C give
// the net parasitics before any layout exists.
//
// T-MI designs get their own models: folding shrinks the footprint ~40%, so
// expected wirelengths scale by roughly the square root of the area ratio —
// this is exactly the adjustment the paper feeds back into synthesis, and
// Table 15 measures what happens without it.
package wlm

import (
	"math"

	"tmi3d/internal/captable"
	"tmi3d/internal/tech"
)

// Model is a wire load model.
type Model struct {
	Node tech.Node
	Mode tech.Mode
	// Fanout→wirelength table (µm), index = fanout (clamped to the end);
	// index 0 unused.
	Lengths []float64
	// UnitR / UnitC are the statistical per-µm wire parasitics (Ω, fF).
	UnitR float64
	UnitC float64
}

// Length returns the estimated wirelength for a fanout, µm.
func (m *Model) Length(fanout int) float64 {
	if fanout < 1 {
		fanout = 1
	}
	if fanout >= len(m.Lengths) {
		last := len(m.Lengths) - 1
		// Extrapolate linearly per extra fanout.
		slope := m.Lengths[last] - m.Lengths[last-1]
		return m.Lengths[last] + slope*float64(fanout-last)
	}
	return m.Lengths[fanout]
}

// RC returns the estimated net parasitics for a fanout.
func (m *Model) RC(fanout int) (r, c float64) {
	l := m.Length(fanout)
	return m.UnitR * l, m.UnitC * l
}

// Build constructs the default model for a technology and an estimated die
// size. dieArea is the expected core area in µm² (cell area / utilization) —
// average wirelength statistics scale with the die's linear dimension.
func Build(t *tech.Technology, dieArea float64) *Model {
	tb := captable.Build(t, captable.Options{})
	rl, cl, _ := tb.ClassAverage(tech.ClassLocal)
	ri, ci, _ := tb.ClassAverage(tech.ClassIntermediate)

	// Statistical mix: short nets live on local layers, longer ones spill to
	// intermediate; weight 70/30 like typical utilization.
	unitR := 0.7*rl + 0.3*ri
	unitC := 0.7*cl + 0.3*ci

	// Base length ~ a few gate pitches, growing sublinearly with fanout
	// (Fig 6's shape) and with the die dimension.
	dieDim := math.Sqrt(math.Max(dieArea, 1))
	base := 0.04 * dieDim
	if base < 2 {
		base = 2
	}
	lengths := make([]float64, 33)
	for f := 1; f < len(lengths); f++ {
		lengths[f] = base * math.Pow(float64(f), 0.75)
	}
	return &Model{Node: t.Node, Mode: t.Mode, Lengths: lengths, UnitR: unitR, UnitC: unitC}
}

// BuildForMode builds the model for a design mode given the 2D die estimate:
// T-MI footprints shrink ≈40% (Section 3.2), so T-MI expected wirelengths
// shrink by the square root of the area ratio (Section 3.4: "wires are about
// 20-30% shorter").
func BuildForMode(node tech.Node, mode tech.Mode, dieArea2D float64) *Model {
	t := tech.New(node, mode)
	area := dieArea2D
	if mode.Is3D() {
		area *= 0.59 // the measured T-MI footprint ratio
	}
	return Build(t, area)
}

// Measured builds a model from observed per-fanout wirelength averages (the
// construction of Fig 6 and Section S2: models extracted from preliminary
// layout runs). samples[i] lists measured lengths of fanout-i nets.
func Measured(t *tech.Technology, samples map[int][]float64) *Model {
	base := Build(t, 1e4)
	maxF := 2
	for f := range samples {
		if f > maxF {
			maxF = f
		}
	}
	if maxF > 32 {
		maxF = 32
	}
	lengths := make([]float64, maxF+1)
	var prev float64
	for f := 1; f <= maxF; f++ {
		if xs := samples[f]; len(xs) > 0 {
			sum := 0.0
			for _, x := range xs {
				sum += x
			}
			lengths[f] = sum / float64(len(xs))
			prev = lengths[f]
		} else {
			lengths[f] = prev
		}
	}
	// Enforce monotone non-decreasing lengths for sane extrapolation.
	for f := 2; f <= maxF; f++ {
		if lengths[f] < lengths[f-1] {
			lengths[f] = lengths[f-1]
		}
	}
	return &Model{Node: t.Node, Mode: t.Mode, Lengths: lengths, UnitR: base.UnitR, UnitC: base.UnitC}
}
