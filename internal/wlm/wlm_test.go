package wlm

import (
	"math"
	"testing"
	"testing/quick"

	"tmi3d/internal/tech"
)

func TestLengthMonotoneInFanout(t *testing.T) {
	m := Build(tech.New(tech.N45, tech.Mode2D), 25000)
	prev := 0.0
	for f := 1; f <= 40; f++ {
		l := m.Length(f)
		if l <= prev {
			t.Fatalf("length(%d)=%v not increasing", f, l)
		}
		prev = l
	}
	// Fanout clamping at the low end.
	if m.Length(0) != m.Length(1) || m.Length(-3) != m.Length(1) {
		t.Error("fanout below 1 should clamp")
	}
}

func TestRCScalesWithLength(t *testing.T) {
	m := Build(tech.New(tech.N45, tech.Mode2D), 25000)
	r1, c1 := m.RC(1)
	r4, c4 := m.RC(4)
	if r4 <= r1 || c4 <= c1 {
		t.Error("RC should grow with fanout")
	}
	if math.Abs(r4/r1-c4/c1) > 1e-9 {
		t.Error("R and C must scale identically (same length)")
	}
	if r1 <= 0 || c1 <= 0 {
		t.Error("unit parasitics must be positive")
	}
}

// The T-MI model predicts 20-30% shorter wires than 2D (Section 3.4).
func TestTMIShorterWires(t *testing.T) {
	m2 := BuildForMode(tech.N45, tech.Mode2D, 25000)
	m3 := BuildForMode(tech.N45, tech.ModeTMI, 25000)
	for _, f := range []int{1, 3, 8, 20} {
		ratio := m3.Length(f) / m2.Length(f)
		if ratio < 0.68 || ratio > 0.88 {
			t.Errorf("fanout %d: T-MI/2D length ratio %.3f, want 0.7-0.85", f, ratio)
		}
	}
}

func TestBiggerDieLongerWires(t *testing.T) {
	small := Build(tech.New(tech.N45, tech.Mode2D), 10000)
	big := Build(tech.New(tech.N45, tech.Mode2D), 160000)
	if big.Length(4) <= small.Length(4) {
		t.Error("wirelength statistics must grow with die size")
	}
	// Scaling ~ sqrt(area): 16× area → ~4× length.
	r := big.Length(4) / small.Length(4)
	if r < 2.5 || r > 6 {
		t.Errorf("16x area → length ratio %.2f, want ≈4", r)
	}
}

func TestMeasuredModel(t *testing.T) {
	tt := tech.New(tech.N45, tech.Mode2D)
	samples := map[int][]float64{
		1: {4, 6},
		2: {9, 11},
		4: {30},
		8: {42, 38},
	}
	m := Measured(tt, samples)
	if got := m.Length(1); math.Abs(got-5) > 1e-9 {
		t.Errorf("length(1) = %v, want 5", got)
	}
	if got := m.Length(2); math.Abs(got-10) > 1e-9 {
		t.Errorf("length(2) = %v, want 10", got)
	}
	// Gap at fanout 3 filled with the previous value, then monotonized.
	if m.Length(3) < m.Length(2) {
		t.Error("gap fill must keep monotonicity")
	}
	// Extrapolation beyond the last sample continues linearly.
	if m.Length(20) <= m.Length(8) {
		t.Error("extrapolation should continue growing")
	}
}

// Property: extrapolated lengths are finite and positive for any fanout.
func TestLengthAlwaysPositive(t *testing.T) {
	m := Build(tech.New(tech.N7, tech.ModeTMI), 4000)
	f := func(fo uint8) bool {
		l := m.Length(int(fo))
		return l > 0 && !math.IsInf(l, 0) && !math.IsNaN(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
