package spice

import (
	"testing"

	"tmi3d/internal/device"
)

// A cross-coupled inverter pair has two stable operating points; SetGuess
// must steer the DC solution into the requested basin — the mechanism the
// DFF characterization relies on.
func TestSetGuessSelectsLatchState(t *testing.T) {
	build := func(qGuess float64) *Circuit {
		c := New()
		vdd := 1.1
		c.AddV("vdd", DC(vdd))
		n := device.PTM45(device.NMOS)
		p := device.PTM45(device.PMOS)
		// q = !qb, qb = !q.
		c.AddMOS(p, 0.63, "q", "qb", "vdd")
		c.AddMOS(n, 0.415, "q", "qb", Ground)
		c.AddMOS(p, 0.63, "qb", "q", "vdd")
		c.AddMOS(n, 0.415, "qb", "q", Ground)
		c.SetGuess("q", qGuess)
		c.SetGuess("qb", 1.1-qGuess)
		return c
	}
	for _, want := range []float64{0, 1.1} {
		c := build(want)
		res, err := c.Transient(Options{Stop: 50, Step: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		vq := res.Voltage("q")
		final := vq[len(vq)-1]
		if want == 0 && final > 0.2 {
			t.Errorf("guess 0: latch settled at %.3f", final)
		}
		if want > 1 && final < 0.9 {
			t.Errorf("guess 1.1: latch settled at %.3f", final)
		}
	}
}

// Guesses on fixed (source-driven) nodes are ignored rather than corrupting
// the solution.
func TestGuessOnFixedNodeIgnored(t *testing.T) {
	c := New()
	c.AddV("s", DC(1.0))
	c.AddR("s", "a", 1)
	c.AddR("a", Ground, 1)
	c.SetGuess("s", -5) // must be ignored
	res, err := c.Transient(Options{Stop: 5, Step: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Voltage("a")[0]; v < 0.49 || v > 0.51 {
		t.Errorf("divider = %v, want 0.5", v)
	}
}
