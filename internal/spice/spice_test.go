package spice

import (
	"fmt"
	"math"
	"testing"

	"tmi3d/internal/device"
)

func TestRCCharge(t *testing.T) {
	c := New()
	c.AddV("s", Ramp{V0: 0, V1: 1, T0: 0, Rise: 0.01})
	c.AddR("s", "a", 1.0) // 1 kΩ
	c.AddC("a", Ground, 2.0)
	res, err := c.Transient(Options{Stop: 10, Step: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	va := res.Voltage("a")
	// τ = 2 ps; compare against the analytic charge curve.
	for k, tm := range res.Times {
		if tm < 0.1 {
			continue
		}
		want := 1 - math.Exp(-(tm-0.005)/2.0)
		if math.Abs(va[k]-want) > 0.02 {
			t.Fatalf("v(a) at t=%.2f = %.4f, want %.4f", tm, va[k], want)
		}
	}
	// Energy drawn from the source to fully charge C through R is C·V² = 2 fJ
	// (half stored, half dissipated).
	e := res.SourceEnergy(0, 0, 10)
	if math.Abs(e-2.0) > 0.1 {
		t.Errorf("source energy = %.3f fJ, want ≈2.0", e)
	}
}

func TestRCDivider(t *testing.T) {
	// Static resistive divider: checks the DC operating point.
	c := New()
	c.AddV("s", DC(1.0))
	c.AddR("s", "m", 1.0)
	c.AddR("m", Ground, 3.0)
	res, err := c.Transient(Options{Stop: 1, Step: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	vm := res.Voltage("m")
	if math.Abs(vm[0]-0.75) > 1e-6 || math.Abs(vm[len(vm)-1]-0.75) > 1e-6 {
		t.Errorf("divider voltage = %v, want 0.75", vm[0])
	}
}

func TestCrossAndSlew(t *testing.T) {
	times := []float64{0, 1, 2, 3, 4}
	wave := []float64{0, 0.25, 0.5, 0.75, 1.0}
	tc, ok := CrossTime(times, wave, 0.5, true, 0)
	if !ok || math.Abs(tc-2.0) > 1e-9 {
		t.Errorf("CrossTime = %v ok=%v, want 2.0", tc, ok)
	}
	// Interpolated crossing.
	tc, ok = CrossTime(times, wave, 0.6, true, 0)
	if !ok || math.Abs(tc-2.4) > 1e-9 {
		t.Errorf("CrossTime(0.6) = %v, want 2.4", tc)
	}
	if _, ok := CrossTime(times, wave, 0.5, false, 0); ok {
		t.Error("no falling crossing exists")
	}
	sl, ok := SlewTime(times, wave, 0, 1, true, 0)
	if !ok || math.Abs(sl-3.2) > 1e-9 { // 10%→90% of a 4 ps linear ramp
		t.Errorf("SlewTime = %v, want 3.2", sl)
	}
}

// A CMOS inverter built from the 45nm models must actually invert, with a
// delay in the right ballpark for the Nangate X1 drive strength.
func TestInverterTransient(t *testing.T) {
	c := New()
	vdd := 1.1
	c.AddV("vdd", DC(vdd))
	c.AddV("a", Ramp{V0: 0, V1: vdd, T0: 20, Rise: 7.5})
	c.AddMOS(device.PTM45(device.PMOS), 0.63, "z", "a", "vdd")
	c.AddMOS(device.PTM45(device.NMOS), 0.415, "z", "a", Ground)
	c.AddC("z", Ground, 0.8)
	res, err := c.Transient(Options{Stop: 120, Step: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	vz := res.Voltage("z")
	if vz[0] < vdd*0.95 {
		t.Fatalf("inverter output should start high, got %.3f", vz[0])
	}
	if last := vz[len(vz)-1]; last > 0.05 {
		t.Fatalf("inverter output should end low, got %.3f", last)
	}
	tIn, ok1 := CrossTime(res.Times, res.Voltage("a"), vdd/2, true, 0)
	tOut, ok2 := CrossTime(res.Times, vz, vdd/2, false, 0)
	if !ok1 || !ok2 {
		t.Fatal("missing 50% crossings")
	}
	delay := tOut - tIn
	// Table 2 fast case: 17.2 ps for the 2D INV. The raw device-only netlist
	// (no cell parasitics) should be in the same ballpark but faster.
	if delay < 1 || delay > 40 {
		t.Errorf("inverter delay = %.2f ps, want O(10 ps)", delay)
	}
	// Energy drawn during the output fall is short-circuit plus Miller
	// coupling (which can briefly back-drive the supply) — small either way.
	e := res.SourceEnergy(0, 10, 120)
	if math.Abs(e) > 1.0 {
		t.Errorf("fall-transition supply energy %.4f fJ, want |e| < 1 fJ", e)
	}
}

// Rising output: supply must deliver at least the load energy C·V².
func TestInverterRiseEnergy(t *testing.T) {
	c := New()
	vdd := 1.1
	load := 2.0
	c.AddV("vdd", DC(vdd))
	c.AddV("a", Ramp{V0: vdd, V1: 0, T0: 20, Rise: 7.5})
	c.AddMOS(device.PTM45(device.PMOS), 0.63, "z", "a", "vdd")
	c.AddMOS(device.PTM45(device.NMOS), 0.415, "z", "a", Ground)
	c.AddC("z", Ground, load)
	res, err := c.Transient(Options{Stop: 200, Step: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	vz := res.Voltage("z")
	if last := vz[len(vz)-1]; last < vdd*0.95 {
		t.Fatalf("output should rise to VDD, got %.3f", last)
	}
	e := res.SourceEnergy(0, 0, 200)
	loadEnergy := load * vdd * vdd
	if e < loadEnergy*0.95 {
		t.Errorf("supply energy %.3f fJ below load energy %.3f fJ", e, loadEnergy)
	}
	// And not absurdly more (gate caps and junction caps add some).
	if e > loadEnergy*2.5 {
		t.Errorf("supply energy %.3f fJ implausibly high (load %.3f)", e, loadEnergy)
	}
}

func TestTransmissionGatePassesBothWays(t *testing.T) {
	// NMOS pass transistor driven hard on: output follows input through the
	// symmetric source/drain handling.
	c := New()
	c.AddV("g", DC(1.1))
	c.AddV("in", Ramp{V0: 0, V1: 0.4, T0: 5, Rise: 1})
	c.AddMOS(device.PTM45(device.NMOS), 0.5, "out", "g", "in")
	c.AddC("out", Ground, 1.0)
	res, err := c.Transient(Options{Stop: 60, Step: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	vo := res.Voltage("out")
	if final := vo[len(vo)-1]; math.Abs(final-0.4) > 0.05 {
		t.Errorf("pass-gate output = %.3f, want ≈0.4", final)
	}
}

func TestErrorsAndGuards(t *testing.T) {
	c := New()
	if _, err := c.Transient(Options{Stop: -1}); err == nil {
		t.Error("negative stop time should error")
	}
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { c.AddR("a", "b", 0) })
	mustPanic(func() { c.AddC("a", "b", -1) })
	// Zero capacitance is silently dropped.
	before := len(c.caps)
	c.AddC("a", "b", 0)
	if len(c.caps) != before {
		t.Error("zero cap should be ignored")
	}
	if v := (&Result{circ: c}).Voltage("nosuch"); v != nil {
		t.Error("unknown node voltage should be nil")
	}
}

func TestNodeDedup(t *testing.T) {
	c := New()
	a := c.Node("a")
	if c.Node("a") != a {
		t.Error("Node should be idempotent")
	}
	if c.Node(Ground) != 0 {
		t.Error("ground must be node 0")
	}
	if c.NumNodes() != 2 {
		t.Errorf("NumNodes = %d, want 2", c.NumNodes())
	}
}

func TestMatrixSolve(t *testing.T) {
	m := newMatrix(3)
	// [2 1 0; 1 3 1; 0 1 2] x = [3;5;3] → x = [1;1;1]
	m.add(0, 0, 2)
	m.add(0, 1, 1)
	m.add(1, 0, 1)
	m.add(1, 1, 3)
	m.add(1, 2, 1)
	m.add(2, 1, 1)
	m.add(2, 2, 2)
	b := []float64{3, 5, 3}
	x := make([]float64, 3)
	if err := m.solve(b, x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if math.Abs(v-1) > 1e-12 {
			t.Errorf("x[%d] = %v, want 1", i, v)
		}
	}
	s := newMatrix(2) // all zeros → singular
	if err := s.solve([]float64{1, 1}, make([]float64, 2)); err == nil {
		t.Error("singular matrix should error")
	}
}

// A long inverter chain crosses parFetThreshold, so its Newton iterations
// take the parallel stamping path. Worker count must not change one bit of
// the solution: stamps are folded into G/rhs in FET index order either way.
func TestParallelStampMatchesSerial(t *testing.T) {
	build := func() *Circuit {
		c := New()
		vdd := 1.1
		c.AddV("vdd", DC(vdd))
		c.AddV("a", Ramp{V0: 0, V1: vdd, T0: 20, Rise: 7.5})
		for i := 0; i < 40; i++ { // 80 FETs ≥ parFetThreshold
			out := fmt.Sprintf("z%d", i)
			c.AddMOS(device.PTM45(device.PMOS), 0.63, out, "a", "vdd")
			c.AddMOS(device.PTM45(device.NMOS), 0.415, out, "a", Ground)
			c.AddC(out, Ground, 0.2+0.05*float64(i%7))
		}
		return c
	}
	serial, err := build().Transient(Options{Stop: 200, Step: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		par, err := build().Transient(Options{Stop: 200, Step: 0.5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(par.V) != len(serial.V) {
			t.Fatalf("workers=%d: %d timepoints vs %d serial", workers, len(par.V), len(serial.V))
		}
		for k := range serial.V {
			for n := range serial.V[k] {
				if par.V[k][n] != serial.V[k][n] {
					t.Fatalf("workers=%d: V[%d][%d] = %v, serial %v", workers, k, n, par.V[k][n], serial.V[k][n])
				}
			}
			for j := range serial.SourceCurrent[k] {
				if par.SourceCurrent[k][j] != serial.SourceCurrent[k][j] {
					t.Fatalf("workers=%d: I[%d][%d] differs", workers, k, j)
				}
			}
		}
	}
}
