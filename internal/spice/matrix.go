package spice

import (
	"errors"
	"math"
)

// matrix is a small dense square matrix with an LU solver — cell netlists
// have a few dozen nodes at most, so dense Gaussian elimination with partial
// pivoting is both simple and fast.
type matrix struct {
	n int
	a []float64
}

func newMatrix(n int) *matrix {
	return &matrix{n: n, a: make([]float64, n*n)}
}

func (m *matrix) zero() {
	for i := range m.a {
		m.a[i] = 0
	}
}

func (m *matrix) add(i, j int, v float64) {
	m.a[i*m.n+j] += v
}

var errSingular = errors.New("spice: singular matrix")

// solve solves M·x = b in place using Gaussian elimination with partial
// pivoting. M and b are destroyed; the solution is written to x.
func (m *matrix) solve(b, x []float64) error {
	n := m.n
	a := m.a
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Pivot.
		best, bestAbs := col, math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > bestAbs {
				best, bestAbs = r, v
			}
		}
		if bestAbs < 1e-18 {
			return errSingular
		}
		if best != col {
			for j := 0; j < n; j++ {
				a[col*n+j], a[best*n+j] = a[best*n+j], a[col*n+j]
			}
			b[col], b[best] = b[best], b[col]
		}
		inv := 1 / a[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] * inv
			if f == 0 {
				continue
			}
			a[r*n+col] = 0
			for j := col + 1; j < n; j++ {
				a[r*n+j] -= f * a[col*n+j]
			}
			b[r] -= f * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for j := r + 1; j < n; j++ {
			s -= a[r*n+j] * x[j]
		}
		x[r] = s / a[r*n+r]
	}
	return nil
}

// stampG stamps a conductance g between nodes a and b into the system for
// free nodes; contributions through fixed nodes move to the RHS.
func stampG(G *matrix, rhs []float64, row []int, v []float64, a, b int, g float64) {
	ra, rb := row[a], row[b]
	if ra >= 0 {
		G.add(ra, ra, g)
		if rb >= 0 {
			G.add(ra, rb, -g)
		} else {
			rhs[ra] += g * v[b]
		}
	}
	if rb >= 0 {
		G.add(rb, rb, g)
		if ra >= 0 {
			G.add(rb, ra, -g)
		} else {
			rhs[rb] += g * v[a]
		}
	}
}
