// Package spice is a small transistor-level circuit simulator used to
// characterize standard cells, standing in for HSPICE under Cadence Encounter
// Library Characterizer in the paper's flow.
//
// It supports resistors, capacitors, grounded voltage sources with piecewise
// waveforms, and MOSFETs using the internal/device compact model. The solver
// is nodal analysis with Newton–Raphson linearization and backward-Euler time
// integration — all voltage sources are grounded, so fixed nodes are simply
// eliminated from the unknown vector.
//
// Units: volts, milliamps, kiloohms, femtofarads, picoseconds (R·C in
// kΩ·fF = ps).
package spice

import (
	"fmt"
	"math"
	"os"

	"tmi3d/internal/device"
	"tmi3d/internal/par"
)

// Ground is the reserved name of the reference node.
const Ground = "0"

// Waveform defines a grounded source voltage over time (ps → V).
type Waveform interface {
	At(t float64) float64
}

// DC is a constant voltage.
type DC float64

// At implements Waveform.
func (d DC) At(float64) float64 { return float64(d) }

// Ramp is a linear transition from V0 to V1 starting at T0 over Rise ps,
// holding V1 afterwards.
type Ramp struct {
	V0, V1   float64
	T0, Rise float64
}

// At implements Waveform.
func (r Ramp) At(t float64) float64 {
	switch {
	case t <= r.T0:
		return r.V0
	case t >= r.T0+r.Rise:
		return r.V1
	default:
		return r.V0 + (r.V1-r.V0)*(t-r.T0)/r.Rise
	}
}

type resistor struct {
	a, b int
	g    float64 // 1/kΩ = mA/V
}

type capacitor struct {
	a, b int
	c    float64 // fF
}

type source struct {
	node int
	wave Waveform
}

type mosfet struct {
	params  device.Params
	w       float64 // effective width, µm
	d, g, s int
}

// Circuit is a netlist under construction and the simulation engine.
type Circuit struct {
	names   []string
	index   map[string]int
	res     []resistor
	caps    []capacitor
	sources []source
	fets    []mosfet
	guesses map[int]float64
}

// SetGuess sets the initial DC guess for a node. Bistable circuits (latches)
// have multiple operating points; the guess selects the intended basin.
func (c *Circuit) SetGuess(node string, v float64) {
	if c.guesses == nil {
		c.guesses = make(map[int]float64)
	}
	c.guesses[c.Node(node)] = v
}

// New returns an empty circuit containing only the ground node.
func New() *Circuit {
	c := &Circuit{index: make(map[string]int)}
	c.Node(Ground)
	return c
}

// Node returns the index for the named node, creating it on first use.
func (c *Circuit) Node(name string) int {
	if i, ok := c.index[name]; ok {
		return i
	}
	i := len(c.names)
	c.names = append(c.names, name)
	c.index[name] = i
	return i
}

// NumNodes returns the number of nodes including ground.
func (c *Circuit) NumNodes() int { return len(c.names) }

// AddR adds a resistor of r kΩ between nodes a and b. Non-positive r panics.
func (c *Circuit) AddR(a, b string, r float64) {
	if r <= 0 {
		panic(fmt.Sprintf("spice: resistor %s-%s with non-positive value %g", a, b, r))
	}
	c.res = append(c.res, resistor{c.Node(a), c.Node(b), 1 / r})
}

// AddC adds a capacitor of f fF between nodes a and b.
func (c *Circuit) AddC(a, b string, f float64) {
	if f < 0 {
		panic(fmt.Sprintf("spice: capacitor %s-%s with negative value %g", a, b, f))
	}
	if f == 0 {
		return
	}
	c.caps = append(c.caps, capacitor{c.Node(a), c.Node(b), f})
}

// AddV attaches a grounded voltage source to the named node.
func (c *Circuit) AddV(node string, w Waveform) {
	c.sources = append(c.sources, source{c.Node(node), w})
}

// AddMOS adds a MOSFET. w is the drawn width in µm for planar models or the
// fin count for multi-gate models; gate capacitances are added automatically
// (half to source, half to drain) along with drain/source junction caps to
// ground.
func (c *Circuit) AddMOS(p device.Params, w float64, drain, gate, src string) {
	weff := p.EffWidth(w)
	c.fets = append(c.fets, mosfet{p, weff, c.Node(drain), c.Node(gate), c.Node(src)})
	cg := p.GateCap(weff)
	c.AddC(gate, src, cg/2)
	c.AddC(gate, drain, cg/2)
	cj := p.JunctionCap(weff)
	c.AddC(drain, Ground, cj)
	c.AddC(src, Ground, cj)
}

// fetCurrent returns the drain-to-source current (into drain, out of source)
// and conductances for the absolute node voltages, handling PMOS polarity.
// Source/drain symmetry lives inside the device model (IdsSym), so terminal
// roles never swap between Newton iterations.
func fetCurrent(m *mosfet, v []float64) (ids float64, gm, gds float64, dEff, sEff int, sign float64) {
	vd, vg, vs := v[m.d], v[m.g], v[m.s]
	sign = 1.0
	if m.params.Kind == device.PMOS {
		vd, vg, vs = -vd, -vg, -vs
		sign = -1
	}
	id, gmv, gdsv := m.params.Derivs(m.w, vg-vs, vd-vs)
	return id, gmv, gdsv, m.d, m.s, sign
}

// Options controls a transient run.
type Options struct {
	Stop float64 // end time, ps
	Step float64 // fixed timestep, ps; default Stop/800
	// MaxNewton bounds Newton iterations per step (default 60).
	MaxNewton int
	// Workers bounds the worker fleet that linearizes FETs inside each
	// Newton iteration; <= 1 (or a small circuit) stamps serially. Results
	// are bit-identical at any value: stamps are recorded per FET and
	// folded into G/rhs in FET index order either way.
	Workers int
}

// stampOp is one recorded matrix/rhs contribution: G[r,c] += v, or, when
// c < 0, rhs[r] += v.
type stampOp struct {
	r, c int
	v    float64
}

// fetStamp holds one FET's linearized contributions — at most six G entries
// and two rhs entries — in the exact order the direct serial stamping used
// to apply them, so replaying stamps in FET index order reproduces the
// serial float accumulation bit for bit.
type fetStamp struct {
	ops [8]stampOp
	n   int
}

// stampFET linearizes one FET about the node voltages v and records its
// companion-model contributions. Pure: it writes only the returned stamp,
// which is what lets the Newton loop evaluate all FETs concurrently.
func stampFET(m *mosfet, v []float64, row []int) (st fetStamp) {
	id, gm, gds, dE, sE, sign := fetCurrent(m, v)
	// Current sign·id flows dE→sE (in NMOS convention after swap).
	// Linearize: i = id + gm·Δvgs_eff + gds·Δvds_eff where the
	// effective voltages are sign·(v[g]-v[sE]) and sign·(v[dE]-v[sE]).
	vgsE := sign * (v[m.g] - v[sE])
	vdsE := sign * (v[dE] - v[sE])
	ieq := id - gm*vgsE - gds*vdsE // residual part
	// i_out(dE) = +sign·(ieq + gm·sign(vg-vsE) + gds·sign(vdE-vsE))
	// Record conductances for G (current leaving dE, entering sE); a fixed
	// source node folds into the rhs with its known voltage instead.
	addG := func(nd, src int, g float64) {
		if r := row[nd]; r >= 0 {
			if rs := row[src]; rs >= 0 {
				st.ops[st.n] = stampOp{r, rs, g}
			} else {
				st.ops[st.n] = stampOp{r, -1, -(g * v[src])}
			}
			st.n++
		}
	}
	// d(i_dE)/dv = gm·(δg - δs) + gds·(δd - δs), independent of sign
	// (sign² = 1).
	addG(dE, m.g, gm)
	addG(dE, sE, -(gm + gds))
	addG(dE, dE, gds)
	addG(sE, m.g, -gm)
	addG(sE, sE, gm+gds)
	addG(sE, dE, -gds)
	if r := row[dE]; r >= 0 {
		st.ops[st.n] = stampOp{r, -1, -(sign * ieq)}
		st.n++
	}
	if r := row[sE]; r >= 0 {
		st.ops[st.n] = stampOp{r, -1, sign * ieq}
		st.n++
	}
	return st
}

// apply folds a recorded stamp into the system in its recorded op order.
func (st *fetStamp) apply(G *matrix, rhs []float64) {
	for i := 0; i < st.n; i++ {
		op := st.ops[i]
		if op.c >= 0 {
			G.add(op.r, op.c, op.v)
		} else {
			rhs[op.r] += op.v
		}
	}
}

// parFetThreshold is the circuit size below which parallel stamping is not
// worth the fork/join; characterization circuits (a handful of FETs) stay
// on the serial path.
const parFetThreshold = 64

// Result holds transient waveforms.
type Result struct {
	circ  *Circuit
	Times []float64
	// V[k] is the voltage vector at Times[k].
	V [][]float64
	// SourceCurrent[k][j] is the current in mA flowing OUT of source j's node
	// into the circuit at Times[k].
	SourceCurrent [][]float64
}

// Transient runs a backward-Euler transient analysis. The initial state is
// the DC operating point with all sources at their t=0 values.
func (c *Circuit) Transient(o Options) (*Result, error) {
	if o.Stop <= 0 {
		return nil, fmt.Errorf("spice: non-positive stop time %g", o.Stop)
	}
	h := o.Step
	if h <= 0 {
		h = o.Stop / 800
	}
	maxNewton := o.MaxNewton
	if maxNewton == 0 {
		maxNewton = 150
	}

	n := len(c.names)
	fixed := make([]bool, n)
	fixed[0] = true // ground
	for _, s := range c.sources {
		fixed[s.node] = true
	}
	// Map free nodes to matrix rows.
	row := make([]int, n)
	var free []int
	for i := 0; i < n; i++ {
		row[i] = -1
		if !fixed[i] {
			row[i] = len(free)
			free = append(free, i)
		}
	}
	nf := len(free)

	v := make([]float64, n)
	for node, g := range c.guesses {
		if !fixed[node] {
			v[node] = g
		}
	}
	setSources := func(t float64) {
		for _, s := range c.sources {
			v[s.node] = s.wave.At(t)
		}
	}
	setSources(0)

	G := newMatrix(nf)
	rhs := make([]float64, nf)
	dv := make([]float64, nf)
	vPrev := make([]float64, n)
	workers := o.Workers
	stamps := make([]fetStamp, len(c.fets))

	// solveStep performs Newton iterations for one system; withCaps=false
	// computes the DC operating point. hStep is the timestep used for the
	// capacitor companion models.
	solveStep := func(withCaps bool, hStep float64) error {
		iters := maxNewton
		if !withCaps {
			// The DC point crawls through exponential subthreshold regions;
			// give it room.
			iters = maxNewton * 4
		}
		lastDelta := math.Inf(1)
		for iter := 0; iter < iters; iter++ {
			G.zero()
			for i := range rhs {
				rhs[i] = 0
			}
			// gmin keeps otherwise-floating nodes non-singular.
			const gmin = 1e-6
			for _, fi := range free {
				G.add(row[fi], row[fi], gmin)
			}
			for _, r := range c.res {
				stampG(G, rhs, row, v, r.a, r.b, r.g)
			}
			if withCaps {
				for _, cp := range c.caps {
					g := cp.c / hStep
					// Companion current source: i = g·((va-vb) - (vaPrev-vbPrev))
					stampG(G, rhs, row, v, cp.a, cp.b, g)
					ieq := g * (vPrev[cp.a] - vPrev[cp.b])
					if ra := row[cp.a]; ra >= 0 {
						rhs[ra] += ieq
					}
					if rb := row[cp.b]; rb >= 0 {
						rhs[rb] -= ieq
					}
				}
			}
			// FET linearization: evaluation is per-FET pure (stampFET), so it
			// shards across workers into index-addressed stamp slots; the
			// float accumulation into the shared G/rhs happens serially in
			// FET index order, replaying exactly the serial op sequence.
			if workers > 1 && len(c.fets) >= parFetThreshold {
				par.For(workers, len(c.fets), func(w, lo, hi int) {
					//tmi3dvet:parloop spice.stamp
					for fi := lo; fi < hi; fi++ {
						stamps[fi] = stampFET(&c.fets[fi], v, row)
					}
				})
				for fi := range stamps {
					stamps[fi].apply(G, rhs)
				}
			} else {
				for fi := range c.fets {
					st := stampFET(&c.fets[fi], v, row)
					st.apply(G, rhs)
				}
			}
			if nf > 0 {
				if err := G.solve(rhs, dv); err != nil {
					return err
				}
			}
			maxDelta := 0.0
			maxNode := -1
			for k, fi := range free {
				delta := dv[k] - v[fi]
				if math.Abs(delta) > maxDelta {
					maxDelta = math.Abs(delta)
					maxNode = fi
				}
				// Damped update: generous steps early, tight steps late.
				// The tight clamp bounds the damage of occasional wild Newton
				// targets from the exponential subthreshold region.
				limit := 0.3
				if iter > 25 {
					limit = 0.06
				}
				if math.Abs(delta) > limit {
					delta = math.Copysign(limit, delta)
				}
				v[fi] += delta
			}
			if maxDelta < 1e-5 {
				return nil
			}
			// Nearly-floating nodes (off stacks at VDD−Vt) make the voltage
			// delta a poor convergence measure: their potential wiggles while
			// all currents are negligible. Accept on the KCL current residual
			// instead once the easy criterion has failed.
			if iter > 8 && c.kclResidual(v, vPrev, hStep, free, withCaps) < 1e-6 {
				return nil
			}
			lastDelta = maxDelta
			if os.Getenv("SPICE_DEBUG") != "" && iter > iters-12 {
				fmt.Fprintf(os.Stderr, "  iter %d maxDelta=%.5g node=%s v=%.5f target=%.5f\n",
					iter, maxDelta, c.names[maxNode], v[maxNode], dv[row[maxNode]])
			}
		}
		if c.kclResidual(v, vPrev, hStep, free, withCaps) < 1e-4 {
			return nil
		}
		return fmt.Errorf("spice: Newton failed to converge (%d free nodes, residual %.3g V)", nf, lastDelta)
	}

	// DC operating point, with source stepping as a fallback: ramp the
	// sources up from zero so Newton tracks a continuous solution branch.
	if err := solveStep(false, h); err != nil {
		for i := range v {
			v[i] = 0
		}
		for node, g := range c.guesses {
			if !fixed[node] {
				v[node] = g
			}
		}
		ok := true
		for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
			for _, sc := range c.sources {
				v[sc.node] = sc.wave.At(0) * frac
			}
			if err := solveStep(false, h); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			if os.Getenv("SPICE_DEBUG") != "" {
				for i, name := range c.names {
					fmt.Fprintf(os.Stderr, "  node %-8s v=%.4f fixed=%v\n", name, v[i], fixed[i])
				}
			}
			return nil, fmt.Errorf("spice: DC operating point did not converge")
		}
		setSources(0)
		if err := solveStep(false, h); err != nil {
			return nil, err
		}
	}

	steps := int(math.Ceil(o.Stop/h)) + 1
	res := &Result{circ: c}
	res.Times = make([]float64, 0, steps)
	res.V = make([][]float64, 0, steps)
	res.SourceCurrent = make([][]float64, 0, steps)
	record := func(t float64) {
		vc := make([]float64, n)
		copy(vc, v)
		res.Times = append(res.Times, t)
		res.V = append(res.V, vc)
		res.SourceCurrent = append(res.SourceCurrent, c.sourceCurrents(v, vPrev, h))
	}
	copy(vPrev, v)
	record(0)

	// advance integrates one interval ending at time t with step hStep,
	// recursively subdividing on Newton failure (classic timestep control).
	var advance func(t, hStep float64, depth int) error
	advance = func(t, hStep float64, depth int) error {
		vSave := make([]float64, n)
		copy(vSave, v)
		setSources(t)
		if err := solveStep(true, hStep); err == nil {
			return nil
		} else if depth == 0 {
			return err
		}
		copy(v, vSave)
		prevSave := make([]float64, n)
		copy(prevSave, vPrev)
		if err := advance(t-hStep/2, hStep/2, depth-1); err != nil {
			copy(vPrev, prevSave)
			return err
		}
		copy(vPrev, v)
		if err := advance(t, hStep/2, depth-1); err != nil {
			copy(vPrev, prevSave)
			return err
		}
		copy(vPrev, prevSave)
		return nil
	}

	for t := h; t <= o.Stop+h/2; t += h {
		if err := advance(t, h, 4); err != nil {
			return nil, err
		}
		record(t)
		copy(vPrev, v)
	}
	return res, nil
}

// kclResidual returns the maximum magnitude (mA) of the KCL violation over
// the free nodes, using exact (non-linearized) element equations.
func (c *Circuit) kclResidual(v, vPrev []float64, h float64, free []int, withCaps bool) float64 {
	res := make([]float64, len(v))
	for _, r := range c.res {
		i := r.g * (v[r.a] - v[r.b])
		res[r.a] += i
		res[r.b] -= i
	}
	if withCaps {
		for _, cp := range c.caps {
			i := cp.c / h * ((v[cp.a] - v[cp.b]) - (vPrev[cp.a] - vPrev[cp.b]))
			res[cp.a] += i
			res[cp.b] -= i
		}
	}
	for fi := range c.fets {
		m := &c.fets[fi]
		id, _, _, dE, sE, sign := fetCurrent(m, v)
		res[dE] += sign * id
		res[sE] -= sign * id
	}
	max := 0.0
	for _, fi := range free {
		if r := math.Abs(res[fi]); r > max {
			max = r
		}
	}
	return max
}

// sourceCurrents computes, for every source, the total current flowing from
// the source node into the rest of the circuit using exact (non-linearized)
// element equations.
func (c *Circuit) sourceCurrents(v, vPrev []float64, h float64) []float64 {
	out := make([]float64, len(c.sources))
	for j, s := range c.sources {
		node := s.node
		i := 0.0
		for _, r := range c.res {
			if r.a == node {
				i += r.g * (v[r.a] - v[r.b])
			} else if r.b == node {
				i += r.g * (v[r.b] - v[r.a])
			}
		}
		for _, cp := range c.caps {
			if cp.a == node {
				i += cp.c / h * ((v[cp.a] - v[cp.b]) - (vPrev[cp.a] - vPrev[cp.b]))
			} else if cp.b == node {
				i += cp.c / h * ((v[cp.b] - v[cp.a]) - (vPrev[cp.b] - vPrev[cp.a]))
			}
		}
		for fi := range c.fets {
			m := &c.fets[fi]
			id, _, _, dE, sE, sign := fetCurrent(m, v)
			if dE == node {
				i += sign * id
			} else if sE == node {
				i -= sign * id
			}
		}
		out[j] = i
	}
	return out
}

// Voltage returns the waveform of the named node.
func (r *Result) Voltage(node string) []float64 {
	i, ok := r.circ.index[node]
	if !ok {
		return nil
	}
	out := make([]float64, len(r.V))
	for k := range r.V {
		out[k] = r.V[k][i]
	}
	return out
}

// CrossTime returns the first time after tMin at which the waveform crosses
// the threshold in the given direction, using linear interpolation. ok is
// false when no crossing exists.
func CrossTime(times, wave []float64, threshold float64, rising bool, tMin float64) (float64, bool) {
	for k := 1; k < len(times); k++ {
		if times[k] < tMin {
			continue
		}
		a, b := wave[k-1], wave[k]
		var crossed bool
		if rising {
			crossed = a < threshold && b >= threshold
		} else {
			crossed = a > threshold && b <= threshold
		}
		if crossed {
			f := (threshold - a) / (b - a)
			return times[k-1] + f*(times[k]-times[k-1]), true
		}
	}
	return 0, false
}

// SlewTime returns the 10%–90% transition time of the waveform between vLow
// and vHigh supply rails, for the first full transition after tMin.
//
// The window is anchored on the transition's 50% crossing: the start is the
// LAST 10% (falling: 90%) crossing before the mid crossing and the end is
// the first 90% (10%) crossing after it. Anchoring matters for stacked
// gates (NAND3/4, NOR3/4): Miller kickback through the switching input's
// gate–drain capacitance displaces the output across the 10% threshold long
// before the true transition at light loads, and taking that first crossing
// inflates the measured slew — which is how non-monotone (decreasing with
// load) slew tables got into the characterized libraries before the lint
// engine's LIB-MONOTONE rule caught them.
func SlewTime(times, wave []float64, vLow, vHigh float64, rising bool, tMin float64) (float64, bool) {
	first := vLow + 0.1*(vHigh-vLow)
	last := vLow + 0.9*(vHigh-vLow)
	if !rising {
		first, last = last, first
	}
	mid := vLow + 0.5*(vHigh-vLow)
	tMid, ok := CrossTime(times, wave, mid, rising, tMin)
	if !ok {
		return 0, false
	}
	t1, ok := lastCrossBefore(times, wave, first, rising, tMin, tMid)
	if !ok {
		return 0, false
	}
	t2, ok := CrossTime(times, wave, last, rising, tMid)
	if ok && t2 > t1 {
		return t2 - t1, true
	}
	return 0, false
}

// lastCrossBefore returns the latest crossing of threshold in (tMin, tMax],
// in the given direction.
func lastCrossBefore(times, wave []float64, threshold float64, rising bool, tMin, tMax float64) (float64, bool) {
	t, found := 0.0, false
	for k := 1; k < len(times); k++ {
		if times[k] < tMin {
			continue
		}
		if times[k-1] > tMax {
			break
		}
		a, b := wave[k-1], wave[k]
		var crossed bool
		if rising {
			crossed = a < threshold && b >= threshold
		} else {
			crossed = a > threshold && b <= threshold
		}
		if crossed {
			f := (threshold - a) / (b - a)
			if tc := times[k-1] + f*(times[k]-times[k-1]); tc <= tMax {
				t, found = tc, true
			}
		}
	}
	return t, found
}

// SourceEnergy integrates the energy delivered BY source j between t0 and t1
// (mA · V · ps = fJ). Positive values mean the source supplied energy.
func (r *Result) SourceEnergy(j int, t0, t1 float64) float64 {
	e := 0.0
	for k := 1; k < len(r.Times); k++ {
		t := r.Times[k]
		if t <= t0 || t > t1 {
			continue
		}
		h := r.Times[k] - r.Times[k-1]
		vNode := r.V[k][r.circ.sources[j].node]
		e += r.SourceCurrent[k][j] * vNode * h
	}
	return e
}
