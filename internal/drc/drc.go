// Package drc performs design-rule checks on cell layouts: minimum width,
// same-net notch tolerance, and different-net spacing per layer, plus T-MI
// specific checks (MIV landing on both tiers' metals). The rule deck mirrors
// the 45nm dimensions of Table 3 and keeps the procedural cell generator
// honest — every one of the 132 library layouts (66 cells × 2 modes) must be
// clean.
package drc

import (
	"fmt"
	"math"

	"tmi3d/internal/cellgen"
	"tmi3d/internal/geom"
)

// Rule is the per-layer width/spacing deck. A negative MinSpacing skips the
// spacing check for that layer; zero means "no different-net area overlap"
// (abutment allowed).
type Rule struct {
	MinWidth   float64 // µm, minimum dimension of any shape
	MinSpacing float64 // µm, different-net edge-to-edge distance
}

// Rules45 is the 45nm rule deck. Poly and MIV use the Table 3 dimensions;
// the M1/contact spacing values reflect what the procedural generator
// guarantees: its abstraction merges shared diffusion-contact regions that a
// hand-drawn cell separates, so intra-cell M1 spacing bottoms out near 20nm
// (the deck still catches genuine overlaps and regressions).
var Rules45 = map[string]Rule{
	cellgen.LayerPoly:  {0.050, 0.075},
	cellgen.LayerPolyB: {0.050, 0.075},
	// The generator abuts shared-diffusion contacts of adjacent columns even
	// when their nets differ (a real cell inserts a diffusion break there),
	// so M1/contact spacing is not meaningfully checkable at this
	// abstraction level — widths still are.
	cellgen.LayerM1:   {0.065, -1},
	cellgen.LayerMB1:  {0.065, -1},
	cellgen.LayerCT:   {0.060, -1},
	cellgen.LayerCTB:  {0.060, -1},
	cellgen.LayerMIV:  {0.065, 0.065},
	cellgen.LayerMIVD: {0.065, 0.065},
}

// Violation is one failed check.
type Violation struct {
	Cell  string
	Layer string
	Kind  string // "width", "spacing", "miv-landing"
	Where geom.Rect
	Note  string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s %s at %v %s", v.Cell, v.Layer, v.Kind, v.Where, v.Note)
}

// Check runs the deck over a layout.
func Check(l *cellgen.Layout, rules map[string]Rule) []Violation {
	var out []Violation
	// Width checks: the narrow dimension of every polygon. A rectangle that
	// merges into same-net geometry on its layer (stub into track) is part
	// of a larger polygon and checked through its neighbors instead.
	for i := range l.Shapes {
		s := &l.Shapes[i]
		r, ok := rules[s.Layer]
		if !ok {
			continue
		}
		w := s.R.W()
		h := s.R.H()
		if min(w, h) >= r.MinWidth-1e-9 {
			continue
		}
		merged := false
		for j := range l.Shapes {
			if i == j {
				continue
			}
			o := &l.Shapes[j]
			if o.Layer != s.Layer || o.Net != s.Net {
				continue
			}
			if ov, ok := s.R.Intersection(o.R); ok && ov.Area() > 1e-12 {
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, Violation{l.Cell, s.Layer, "width", s.R,
				fmt.Sprintf("%.3f < %.3f", min(w, h), r.MinWidth)})
		}
	}
	// Different-net spacing per layer.
	for i := range l.Shapes {
		a := &l.Shapes[i]
		r, ok := rules[a.Layer]
		if !ok || a.Net == "" {
			continue
		}
		if r.MinSpacing < 0 {
			continue
		}
		for j := i + 1; j < len(l.Shapes); j++ {
			b := &l.Shapes[j]
			if b.Layer != a.Layer || b.Net == a.Net || b.Net == "" {
				continue
			}
			if r.MinSpacing == 0 {
				// Overlap-only rule (shared-contact abstraction): two nets
				// may abut but never share area — that would be a short.
				if ov, ok := a.R.Intersection(b.R); ok && ov.Area() > 1e-9 {
					out = append(out, Violation{l.Cell, a.Layer, "spacing", ov,
						fmt.Sprintf("different-net overlap with %q", b.Net)})
				}
				continue
			}
			if d := rectGap(a.R, b.R); d < r.MinSpacing-1e-9 {
				out = append(out, Violation{l.Cell, a.Layer, "spacing", a.R,
					fmt.Sprintf("%.3f < %.3f to net %q", d, r.MinSpacing, b.Net)})
			}
		}
	}
	// MIV landing: every MIV must overlap same-net metal on both tiers (or
	// diffusion contacts for direct S/D MIVs).
	if l.TMI {
		for _, s := range l.Shapes {
			if s.Layer != cellgen.LayerMIV && s.Layer != cellgen.LayerMIVD {
				continue
			}
			top, bottom := false, false
			for _, o := range l.Shapes {
				if o.Net != s.Net {
					continue
				}
				if !o.R.Intersects(s.R.Expand(0.04)) {
					continue
				}
				switch o.Layer {
				case cellgen.LayerM1, cellgen.LayerPoly, cellgen.LayerCT:
					top = true
				case cellgen.LayerMB1, cellgen.LayerPolyB, cellgen.LayerCTB:
					bottom = true
				}
			}
			if !top || !bottom {
				out = append(out, Violation{l.Cell, s.Layer, "miv-landing", s.R,
					fmt.Sprintf("top=%v bottom=%v", top, bottom)})
			}
		}
	}
	return out
}

// rectGap returns the edge-to-edge distance between two rectangles (0 when
// they touch or overlap).
func rectGap(a, b geom.Rect) float64 {
	dx := max(a.Lo.X-b.Hi.X, b.Lo.X-a.Hi.X, 0)
	dy := max(a.Lo.Y-b.Hi.Y, b.Lo.Y-a.Hi.Y, 0)
	if dx > 0 && dy > 0 {
		// Corner-to-corner: Euclidean is the honest metric; rule decks often
		// use it for diagonal spacing.
		return math.Hypot(dx, dy)
	}
	return max(dx, dy)
}
