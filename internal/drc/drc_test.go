package drc

import (
	"testing"

	"tmi3d/internal/cellgen"
	"tmi3d/internal/geom"
)

// Every library cell layout, 2D and folded, must be DRC-clean under the
// 45nm deck — this is the regression net under the procedural generator.
func TestLibraryClean(t *testing.T) {
	total := 0
	for _, def := range cellgen.Library() {
		d := def
		for _, tmi := range []bool{false, true} {
			var lay *cellgen.Layout
			if tmi {
				lay = cellgen.GenerateTMI(&d)
			} else {
				lay = cellgen.Generate2D(&d)
			}
			vs := Check(lay, Rules45)
			total++
			for _, v := range vs {
				t.Errorf("%v (tmi=%v)", v, tmi)
			}
			if len(vs) > 0 {
				return // one cell's detail is enough
			}
		}
	}
	if total != 132 {
		t.Errorf("checked %d layouts, want 132", total)
	}
}

func TestDetectsWidthViolation(t *testing.T) {
	l := &cellgen.Layout{Cell: "BAD", Shapes: []geom.Shape{
		{Layer: cellgen.LayerM1, R: geom.NewRect(0, 0, 0.02, 1), Net: "a"},
	}}
	vs := Check(l, Rules45)
	if len(vs) != 1 || vs[0].Kind != "width" {
		t.Fatalf("violations = %v", vs)
	}
	if vs[0].String() == "" {
		t.Error("empty violation string")
	}
}

func TestDetectsSpacingViolation(t *testing.T) {
	// Poly keeps a true distance rule.
	l := &cellgen.Layout{Cell: "BAD", Shapes: []geom.Shape{
		{Layer: cellgen.LayerPoly, R: geom.NewRect(0, 0, 0.06, 1), Net: "a"},
		{Layer: cellgen.LayerPoly, R: geom.NewRect(0.1, 0, 0.16, 1), Net: "b"},
	}}
	vs := Check(l, Rules45)
	if len(vs) != 1 || vs[0].Kind != "spacing" {
		t.Fatalf("violations = %v", vs)
	}
	// Same net → no violation.
	l.Shapes[1].Net = "a"
	if vs := Check(l, Rules45); len(vs) != 0 {
		t.Fatalf("same-net spacing flagged: %v", vs)
	}
	// An overlap-only deck flags different nets sharing area.
	overlapDeck := map[string]Rule{cellgen.LayerM1: {0.065, 0}}
	m := &cellgen.Layout{Cell: "BAD", Shapes: []geom.Shape{
		{Layer: cellgen.LayerM1, R: geom.NewRect(0, 0, 0.1, 1), Net: "a"},
		{Layer: cellgen.LayerM1, R: geom.NewRect(0.05, 0.2, 0.15, 0.8), Net: "b"},
	}}
	vs = Check(m, overlapDeck)
	if len(vs) != 1 || vs[0].Kind != "spacing" {
		t.Fatalf("overlap violations = %v", vs)
	}
	// Touching (zero-area intersection) is allowed.
	m.Shapes[1].R = geom.NewRect(0.1, 0, 0.2, 1)
	if vs := Check(m, overlapDeck); len(vs) != 0 {
		t.Fatalf("touching flagged: %v", vs)
	}
	// The library deck skips M1 spacing entirely (shared-diffusion abutment).
	if Rules45[cellgen.LayerM1].MinSpacing >= 0 {
		t.Error("library deck should skip M1 spacing")
	}
}

func TestDetectsFloatingMIV(t *testing.T) {
	l := &cellgen.Layout{Cell: "BAD", TMI: true, Shapes: []geom.Shape{
		{Layer: cellgen.LayerMIV, R: geom.NewRect(0, 0, 0.07, 0.07), Net: "x"},
	}}
	vs := Check(l, Rules45)
	found := false
	for _, v := range vs {
		if v.Kind == "miv-landing" {
			found = true
		}
	}
	if !found {
		t.Fatalf("floating MIV not caught: %v", vs)
	}
}
