// Package extract computes cell-internal parasitic RC from procedural cell
// layouts, standing in for Mentor Calibre xRC with EM-simulation-based rules
// (Section 3.2 of the paper).
//
// Resistance comes from sheet resistance times squares per wire shape, plus
// per-contact and per-MIV terms. Capacitance combines area, fringe, lateral
// same-layer coupling, and — for folded T-MI cells — vertical coupling across
// the inter-layer dielectric between bottom-tier objects (PB, MB1) and
// top-tier objects (P, M1).
//
// The 2D extractor the paper used can model the top-tier silicon either as a
// dielectric (overestimating inter-tier coupling) or as a conductor
// (underestimating it); both modes are provided, mirroring the "3D" and
// "3D-c" columns of Table 1.
package extract

import (
	"math"
	"sort"

	"tmi3d/internal/cellgen"
	"tmi3d/internal/geom"
)

// TopSilicon selects how the top-tier silicon is modeled during extraction.
type TopSilicon int

// Extraction modes for the top-tier silicon (Table 1).
const (
	Dielectric TopSilicon = iota // "3D": coupling overestimated
	Conductor                    // "3D-c": coupling underestimated
	// Mean averages the two bounds — "the real case would be between these
	// two extreme cases" (Section 3.2) — and is what the library
	// characterization uses.
	Mean
)

// Extraction rule constants, calibrated once against the Table 1 published
// values for the Nangate-derived 2D cells.
const (
	sheetPoly = 7.5  // Ω/sq
	sheetM1   = 0.27 // Ω/sq (copper, 130nm thick)
	rContact  = 5.0  // Ω per contact cut
	rMIV      = 2.6  // Ω per monolithic inter-tier via
	// rMIVPath is the landing-pad detour of a tracked MIV connection
	// (CTB → MB1 stub → MIV → M1 stub → CT); direct S/D contacts avoid it.
	rMIVPath = 22.0

	caPoly = 0.08 // fF/µm² area capacitance, poly over field
	cfPoly = 0.06 // fF/µm fringe
	caM1   = 0.03
	cfM1   = 0.04
	// Lateral coupling between parallel same-layer edges, fF/µm at the
	// reference gap, scaled by gapRef/gap.
	cLateral = 0.030
	gapRef   = 0.14
	maxGap   = 0.30
	// Vertical coupling across the 110nm inter-tier ILD: k·ε0/t_ILD.
	cVertical = 0.20 // fF/µm²
	// In conductor mode the doped top-tier silicon screens most of the field;
	// the surviving coupling (to ground) is a fraction of the dielectric case.
	conductorScreen = 0.35
)

// NetRC is the lumped parasitics of one cell-internal net.
type NetRC struct {
	R float64 // series resistance, Ω
	C float64 // total capacitance to ground (incl. coupling halves), fF
}

// Result is a full cell extraction.
type Result struct {
	Cell string
	Mode TopSilicon
	Nets map[string]NetRC
	// TotalR sums signal-net resistance; TotalC sums capacitance over all
	// nets including the supply strips — the quantities Table 1 reports.
	TotalR float64 // kΩ
	TotalC float64 // fF
	// RailCoupling is the VDD–VSS strip overlap capacitance (T-MI only), fF.
	RailCoupling float64
}

func sheetFor(layer string) (rs float64, wire bool) {
	switch layer {
	case cellgen.LayerPoly, cellgen.LayerPolyB:
		return sheetPoly, true
	case cellgen.LayerM1, cellgen.LayerMB1:
		return sheetM1, true
	}
	return 0, false
}

func capFor(layer string) (ca, cf float64, ok bool) {
	switch layer {
	case cellgen.LayerPoly, cellgen.LayerPolyB:
		return caPoly, cfPoly, true
	case cellgen.LayerM1, cellgen.LayerMB1:
		return caM1, cfM1, true
	}
	return 0, 0, false
}

func isContact(layer string) bool {
	return layer == cellgen.LayerCT || layer == cellgen.LayerCTB
}

// bottomTier reports whether the layer belongs to the bottom device tier.
func bottomTier(layer string) bool {
	switch layer {
	case cellgen.LayerPolyB, cellgen.LayerDiffB, cellgen.LayerCTB, cellgen.LayerMB1:
		return true
	}
	return false
}

// Extract computes the parasitic RC of a cell layout.
func Extract(def *cellgen.CellDef, l *cellgen.Layout, mode TopSilicon) *Result {
	if mode == Mean {
		a := Extract(def, l, Dielectric)
		b := Extract(def, l, Conductor)
		out := &Result{Cell: a.Cell, Mode: Mean, Nets: make(map[string]NetRC, len(a.Nets))}
		for net, rc := range a.Nets {
			rc2 := b.Nets[net]
			out.Nets[net] = NetRC{R: rc.R, C: (rc.C + rc2.C) / 2}
		}
		out.TotalR = a.TotalR
		out.TotalC = (a.TotalC + b.TotalC) / 2
		out.RailCoupling = (a.RailCoupling + b.RailCoupling) / 2
		return out
	}
	res := &Result{Cell: l.Cell, Mode: mode, Nets: make(map[string]NetRC)}

	ports := map[string]bool{}
	for _, p := range def.Ports {
		ports[p.Name] = true
	}

	// Resistance per tier and self-capacitance per net. For folded cells the
	// tier-crossing topology determines the effective net resistance: every
	// I/O pin exists on both tiers (Section 3.1), so a port net's two tier
	// branches hang in parallel off the MIV; an internal net is generated on
	// one tier and must cross the MIV in series to reach the other. This is
	// what makes simple-cell resistance drop after folding while the DFF's
	// many internal tier crossings push its resistance above 2D (Table 1).
	type tierR struct{ bot, top, via float64 }
	acc := map[string]*tierR{}
	tr := func(net string) *tierR {
		a, ok := acc[net]
		if !ok {
			a = &tierR{}
			acc[net] = a
		}
		return a
	}
	for _, s := range l.Shapes {
		if s.Net == "" {
			continue
		}
		rc := res.Nets[s.Net]
		a := tr(s.Net)
		if rs, ok := sheetFor(s.Layer); ok {
			long, short := s.R.W(), s.R.H()
			if short > long {
				long, short = short, long
			}
			var r float64
			if short > 0 {
				r = rs * long / short
			}
			if bottomTier(s.Layer) {
				a.bot += r
			} else {
				a.top += r
			}
			if ca, cf, ok := capFor(s.Layer); ok {
				rc.C += ca*s.R.Area() + cf*s.R.Perimeter()
			}
		} else if isContact(s.Layer) {
			if bottomTier(s.Layer) {
				a.bot += rContact
			} else {
				a.top += rContact
			}
		} else if s.Layer == cellgen.LayerMIV {
			a.via += rMIV + rMIVPath
		} else if s.Layer == cellgen.LayerMIVD {
			a.via += rMIV
		}
		res.Nets[s.Net] = rc
	}
	for net, a := range acc {
		rc := res.Nets[net]
		if l.TMI && a.bot > 0 && a.top > 0 && ports[net] {
			rc.R = a.via + a.bot*a.top/(a.bot+a.top)
		} else {
			rc.R = a.bot + a.via + a.top
		}
		res.Nets[net] = rc
	}

	// Lateral same-layer coupling between different nets.
	for i := range l.Shapes {
		a := &l.Shapes[i]
		if _, wire := sheetFor(a.Layer); !wire || a.Net == "" {
			continue
		}
		for j := i + 1; j < len(l.Shapes); j++ {
			b := &l.Shapes[j]
			if b.Layer != a.Layer || b.Net == a.Net || b.Net == "" {
				continue
			}
			if c := lateralCoupling(a.R, b.R); c > 0 {
				addHalf(res.Nets, a.Net, b.Net, c)
			}
		}
	}

	// Inter-tier vertical coupling for folded cells.
	if l.TMI {
		scale := 1.0
		toGroundOnly := false
		if mode == Conductor {
			scale = conductorScreen
			toGroundOnly = true
		}
		for i := range l.Shapes {
			a := &l.Shapes[i]
			if !bottomTier(a.Layer) || a.Net == "" {
				continue
			}
			if _, wire := sheetFor(a.Layer); !wire {
				continue
			}
			for j := range l.Shapes {
				b := &l.Shapes[j]
				if bottomTier(b.Layer) || b.Net == "" || b.Net == a.Net {
					continue
				}
				if _, wire := sheetFor(b.Layer); !wire {
					continue
				}
				ov, ok := a.R.Intersection(b.R)
				if !ok || ov.Area() <= 0 {
					continue
				}
				c := cVertical * ov.Area() * scale
				if a.Net == cellgen.NetVDD && b.Net == cellgen.NetVSS ||
					a.Net == cellgen.NetVSS && b.Net == cellgen.NetVDD {
					res.RailCoupling += c
				}
				if toGroundOnly {
					// Screened by the grounded top silicon: each plate sees
					// ground individually.
					addTo(res.Nets, a.Net, c/2)
					addTo(res.Nets, b.Net, c/2)
				} else {
					addHalf(res.Nets, a.Net, b.Net, c)
				}
			}
		}
	}

	// Table 1 totals: signal-net R, all-net C. Summed in sorted net order —
	// float addition does not commute, and the totals feed byte-compared
	// reports.
	netNames := make([]string, 0, len(res.Nets))
	for net := range res.Nets {
		netNames = append(netNames, net)
	}
	sort.Strings(netNames)
	for _, net := range netNames {
		rc := res.Nets[net]
		if net != cellgen.NetVDD && net != cellgen.NetVSS {
			res.TotalR += rc.R
		}
		res.TotalC += rc.C
	}
	res.TotalR /= 1000 // Ω → kΩ
	_ = def
	return res
}

// lateralCoupling returns the coupling cap between two same-layer rectangles
// based on their parallel-run length and gap.
func lateralCoupling(a, b geom.Rect) float64 {
	// Horizontal overlap with vertical gap, or vice versa.
	xOv := math.Min(a.Hi.X, b.Hi.X) - math.Max(a.Lo.X, b.Lo.X)
	yOv := math.Min(a.Hi.Y, b.Hi.Y) - math.Max(a.Lo.Y, b.Lo.Y)
	if xOv > 0 && yOv <= 0 {
		gap := -yOv
		if gap < maxGap {
			return cLateral * xOv * gapRef / math.Max(gap, 0.05)
		}
	}
	if yOv > 0 && xOv <= 0 {
		gap := -xOv
		if gap < maxGap {
			return cLateral * yOv * gapRef / math.Max(gap, 0.05)
		}
	}
	return 0
}

func addHalf(nets map[string]NetRC, a, b string, c float64) {
	addTo(nets, a, c/2)
	addTo(nets, b, c/2)
}

func addTo(nets map[string]NetRC, net string, c float64) {
	rc := nets[net]
	rc.C += c
	nets[net] = rc
}
