package extract

import (
	"math"
	"testing"

	"tmi3d/internal/cellgen"
)

// table1 holds the paper's published cell-internal parasitic RC values.
var table1 = []struct {
	cell           string
	r2d, r3d, r3dc float64 // kΩ
	c2d, c3d, c3dc float64 // fF
}{
	{"INV", 0.186, 0.107, 0.107, 0.363, 0.368, 0.349},
	{"NAND2", 0.372, 0.237, 0.237, 0.561, 0.586, 0.547},
	{"MUX2", 1.133, 0.975, 0.975, 1.823, 1.938, 1.796},
	{"DFF", 2.876, 3.045, 3.045, 4.108, 5.101, 4.740},
}

func extractAll(t *testing.T, base string) (e2d, e3d, e3dc *Result) {
	t.Helper()
	def, ok := cellgen.Template(base)
	if !ok {
		t.Fatalf("no template %s", base)
	}
	l2 := cellgen.Generate2D(&def)
	l3 := cellgen.GenerateTMI(&def)
	return Extract(&def, l2, Dielectric),
		Extract(&def, l3, Dielectric),
		Extract(&def, l3, Conductor)
}

// Table 1 magnitudes: our extracted totals must land in the right range.
// The tolerance is loose (the original used EM-simulation-based rules on the
// real Nangate GDS); the *relationships* are checked tightly below.
func TestTable1Magnitudes(t *testing.T) {
	for _, row := range table1 {
		e2d, e3d, e3dc := extractAll(t, row.cell)
		check := func(name string, got, want float64) {
			t.Helper()
			if got < want*0.5 || got > want*2.0 {
				t.Errorf("%s %s = %.3f, paper %.3f (want within 2x)", row.cell, name, got, want)
			}
		}
		check("R 2D", e2d.TotalR, row.r2d)
		check("R 3D", e3d.TotalR, row.r3d)
		check("C 2D", e2d.TotalC, row.c2d)
		check("C 3D", e3d.TotalC, row.c3d)
		check("C 3D-c", e3dc.TotalC, row.c3dc)
		t.Logf("%-6s R: 2D=%.3f/%.3f 3D=%.3f/%.3f kΩ  C: 2D=%.3f/%.3f 3D=%.3f/%.3f 3Dc=%.3f/%.3f fF",
			row.cell, e2d.TotalR, row.r2d, e3d.TotalR, row.r3d,
			e2d.TotalC, row.c2d, e3d.TotalC, row.c3d, e3dc.TotalC, row.c3dc)
	}
}

// Table 1's qualitative findings — the paper's actual claims:
//
//	(1) simple cells: 3D resistance noticeably below 2D (shorter poly/metal);
//	(2) DFF: both R and C of 3D exceed 2D (complex internal connections);
//	(3) C ordering: 3D-c < 3D, with 2D in between;
//	(4) conductor-mode R identical to dielectric-mode R.
func TestTable1Relationships(t *testing.T) {
	for _, row := range table1 {
		e2d, e3d, e3dc := extractAll(t, row.cell)
		if row.cell == "DFF" {
			if e3d.TotalR <= e2d.TotalR {
				t.Errorf("DFF: 3D R (%.3f) should exceed 2D R (%.3f)", e3d.TotalR, e2d.TotalR)
			}
			if e3d.TotalC <= e2d.TotalC {
				t.Errorf("DFF: 3D C (%.3f) should exceed 2D C (%.3f)", e3d.TotalC, e2d.TotalC)
			}
		} else {
			if e3d.TotalR >= e2d.TotalR {
				t.Errorf("%s: 3D R (%.3f) should be below 2D R (%.3f)", row.cell, e3d.TotalR, e2d.TotalR)
			}
		}
		if e3dc.TotalC >= e3d.TotalC {
			t.Errorf("%s: conductor-mode C (%.3f) must be below dielectric-mode C (%.3f)",
				row.cell, e3dc.TotalC, e3d.TotalC)
		}
		if math.Abs(e3dc.TotalR-e3d.TotalR) > 1e-9 {
			t.Errorf("%s: top-silicon model must not change resistance", row.cell)
		}
	}
}

// Section 3.1: the VDD/VSS strip overlap acts as a tiny decoupling cap,
// "around 0.01 fF" for the inverter.
func TestRailCoupling(t *testing.T) {
	_, e3d, _ := extractAll(t, "INV")
	if e3d.RailCoupling < 0.002 || e3d.RailCoupling > 0.05 {
		t.Errorf("INV rail coupling = %.4f fF, want ≈0.01", e3d.RailCoupling)
	}
	e2d, _, _ := extractAll(t, "INV")
	if e2d.RailCoupling != 0 {
		t.Error("2D cells have no overlapping rails")
	}
}

// Per-net data must be present for every net of the cell, and every net must
// have non-negative parasitics.
func TestPerNetData(t *testing.T) {
	def, _ := cellgen.Template("NAND2")
	l := cellgen.Generate2D(&def)
	res := Extract(&def, l, Dielectric)
	for _, net := range def.AllNets() {
		rc, ok := res.Nets[net]
		if !ok {
			t.Errorf("net %s missing from extraction", net)
			continue
		}
		if rc.R < 0 || rc.C < 0 {
			t.Errorf("net %s has negative parasitics %+v", net, rc)
		}
	}
	// The output net of a NAND2 should carry measurable wiring.
	if res.Nets["Z"].C <= 0 || res.Nets["Z"].R <= 0 {
		t.Errorf("Z net parasitics = %+v, want positive", res.Nets["Z"])
	}
}

// Direct S/D contacts should make the INV output net cheaper in 3D than a
// tracked route would be: the Z net R must stay below the 2D Z net R plus
// the MIV cost.
func TestDirectSDContactBenefit(t *testing.T) {
	def, _ := cellgen.Template("INV")
	l3 := cellgen.GenerateTMI(&def)
	if l3.DirectSD != 1 {
		t.Fatalf("INV should use 1 direct S/D contact, got %d", l3.DirectSD)
	}
	res := Extract(&def, l3, Dielectric)
	// Z in 3D: two contacts + MIV + landing pad — tens of ohms.
	if z := res.Nets["Z"].R; z <= 0 || z > 100 {
		t.Errorf("3D INV Z net R = %.1f Ω, want small (direct S/D contact)", z)
	}
}

// Scaling sanity: a bigger cell has more parasitics.
func TestMonotoneWithComplexity(t *testing.T) {
	order := []string{"INV", "NAND2", "MUX2", "DFF"}
	var prevR, prevC float64
	for _, base := range order {
		e2d, _, _ := extractAll(t, base)
		if e2d.TotalR <= prevR || e2d.TotalC <= prevC {
			t.Errorf("%s: parasitics should grow with cell complexity", base)
		}
		prevR, prevC = e2d.TotalR, e2d.TotalC
	}
}
