package core

import (
	"strings"
	"testing"

	"tmi3d/internal/tech"
)

// Core tests run at a small scale; the relationships under test hold at any
// scale while the harness stays fast. The study is shared so its flow cache
// serves every test.
var sharedStudy = NewStudy(0.12)

func study() *Study { return sharedStudy }

func TestTable1Relationships(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Cell == "DFF" {
			if r.R3D <= r.R2D {
				t.Errorf("DFF 3D R should exceed 2D")
			}
		} else if r.R3D >= r.R2D {
			t.Errorf("%s: 3D R should be below 2D", r.Cell)
		}
		if r.C3Dc >= r.C3D {
			t.Errorf("%s: conductor-mode C must be below dielectric", r.Cell)
		}
	}
	if s := RenderTable1(); !strings.Contains(s, "DFF") {
		t.Error("render missing DFF row")
	}
}

func TestTable2Relationships(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("%d rows, want 12 (4 cells × 3 corners)", len(rows))
	}
	for _, r := range rows {
		ratio := r.Delay3D / r.Delay2D
		if r.Cell == "DFF" {
			if ratio < 1.0 {
				t.Errorf("DFF %s: 3D should be slightly slower (ratio %.3f)", r.Corner, ratio)
			}
		} else if ratio > 1.02 {
			t.Errorf("%s %s: 3D delay ratio %.3f, want ≤ ~1", r.Cell, r.Corner, ratio)
		}
		// Within 10 points of the paper's ratio.
		if d := 100*ratio - r.PaperDelayRatio; d > 10 || d < -10 {
			t.Errorf("%s %s: delay ratio %.1f%% vs paper %.1f%%", r.Cell, r.Corner, 100*ratio, r.PaperDelayRatio)
		}
	}
}

func TestStaticTables(t *testing.T) {
	if s := RenderTable3(); !strings.Contains(s, "M2-M6") {
		t.Errorf("Table 3 should list the T-MI local span M2-M6:\n%s", s)
	}
	if s := RenderTable6(); !strings.Contains(s, "multi-gate") {
		t.Error("Table 6 missing device type")
	}
	if s := RenderTable10(); !strings.Contains(s, "2025") {
		t.Error("Table 10 missing 7nm year")
	}
}

func TestSummary45(t *testing.T) {
	s := study()
	rows, err := s.Summary(tech.N45)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	var ldpc, des SummaryRow
	for _, r := range rows {
		if r.Footprint > -30 || r.Footprint < -50 {
			t.Errorf("%s footprint %.1f%%, want ≈-40%%", r.Circuit, r.Footprint)
		}
		if r.Wirelen > -5 {
			t.Errorf("%s wirelength %.1f%%, want negative", r.Circuit, r.Wirelen)
		}
		if r.Total > 0 {
			t.Errorf("%s total power %.1f%%, want reduction", r.Circuit, r.Total)
		}
		switch r.Circuit {
		case "LDPC":
			ldpc = r
		case "DES":
			des = r
		}
	}
	// The paper's key circuit-characteristics finding: LDPC benefits far
	// more than DES (Section 4.3).
	if ldpc.Total >= des.Total {
		t.Errorf("LDPC reduction (%.1f%%) should exceed DES (%.1f%%)", ldpc.Total, des.Total)
	}
	if _, err := s.RenderSummary(tech.N45); err != nil {
		t.Fatal(err)
	}
}

func TestTable16WirePinCharacter(t *testing.T) {
	s := study()
	rows, err := s.Table16()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byKey := map[string]Table16Row{}
	for _, r := range rows {
		byKey[r.Circuit+modeShort(r.Mode)] = r
	}
	// LDPC is wire-dominated; DES leans much further toward pin cap
	// (Section S8). Compare the wire:pin ratios.
	ldpcRatio := byKey["LDPC2D"].WireCapPF / byKey["LDPC2D"].PinCapPF
	desRatio := byKey["DES2D"].WireCapPF / byKey["DES2D"].PinCapPF
	if ldpcRatio <= desRatio {
		t.Errorf("LDPC wire/pin ratio (%.2f) should exceed DES (%.2f)", ldpcRatio, desRatio)
	}
	// T-MI cuts wire cap much more than pin cap.
	ld2, ld3 := byKey["LDPC2D"], byKey["LDPC3D"]
	wireCut := 1 - ld3.WireCapPF/ld2.WireCapPF
	pinCut := 1 - ld3.PinCapPF/ld2.PinCapPF
	if wireCut <= pinCut {
		t.Errorf("T-MI wire-cap cut (%.2f) should exceed pin-cap cut (%.2f)", wireCut, pinCut)
	}
}

func TestFig4Trend(t *testing.T) {
	s := study()
	pts, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("%d points, want 6", len(pts))
	}
	// Faster targets must not shrink the benefit dramatically; the paper's
	// trend is growth from slow → fast.
	for _, name := range []string{"AES", "M256"} {
		var slow, fast Fig4Point
		for _, p := range pts {
			if p.Circuit == name && p.Label == "slow" {
				slow = p
			}
			if p.Circuit == name && p.Label == "fast" {
				fast = p
			}
		}
		if fast.Total < slow.Total-3 {
			t.Errorf("%s: benefit at fast clock (%.1f%%) collapsed vs slow (%.1f%%)",
				name, fast.Total, slow.Total)
		}
	}
}

func TestFig6CurvesMonotone(t *testing.T) {
	s := study()
	curves, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 5 {
		t.Fatalf("%d curves", len(curves))
	}
	for _, c := range curves {
		if len(c.Fanout) < 3 {
			t.Errorf("%s: only %d fanout buckets", c.Circuit, len(c.Fanout))
			continue
		}
		// Average length at fanout 8+ should exceed fanout 1.
		var l1, lHigh float64
		for i, f := range c.Fanout {
			if f == 1 {
				l1 = c.Length[i]
			}
			if f >= 8 && lHigh == 0 {
				lHigh = c.Length[i]
			}
		}
		if l1 > 0 && lHigh > 0 && lHigh <= l1 {
			t.Errorf("%s: high-fanout nets (%.1f µm) should be longer than fanout-1 (%.1f µm)",
				c.Circuit, lHigh, l1)
		}
	}
}

func TestFig11ActivityInvariance(t *testing.T) {
	s := study()
	pts, err := s.Fig11([]string{"AES"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	// Power grows with activity; the reduction rate stays within a band
	// (the paper: "not largely affected").
	for i := 1; i < len(pts); i++ {
		if pts[i].Power2D <= pts[i-1].Power2D {
			t.Error("2D power should grow with activity")
		}
	}
	min, max := pts[0].Reduction, pts[0].Reduction
	for _, p := range pts[1:] {
		if p.Reduction < min {
			min = p.Reduction
		}
		if p.Reduction > max {
			max = p.Reduction
		}
	}
	if max-min > 8 {
		t.Errorf("reduction rate varies %.1f points across activities, want nearly flat", max-min)
	}
}

func TestTable5IncludesPriorWork(t *testing.T) {
	s := study()
	rows, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	sources := map[string]bool{}
	for _, r := range rows {
		sources[r.Source] = true
	}
	if !sources["ours"] || !sources["[2]"] || !sources["[7]"] {
		t.Errorf("Table 5 missing sources: %v", sources)
	}
}

func TestFig10ClassesSumTo100(t *testing.T) {
	s := study()
	rows, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		sum := r.LocalPct + r.IntermediatePct + r.GlobalPct
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("%s-%v: class percentages sum to %.2f", r.Circuit, r.Mode, sum)
		}
		if r.LocalPct <= 0 || r.IntermediatePct <= 0 {
			t.Errorf("%s-%v: local and intermediate layers should both be used", r.Circuit, r.Mode)
		}
	}
}

func TestTable17ModifiedStack(t *testing.T) {
	s := study()
	rows, err := s.Table17()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// The paper finds the +M stack changes power by only a few percent in
	// either direction; assert the comparison stays in a sane band.
	for i := 0; i < len(rows); i += 2 {
		base, mod := rows[i], rows[i+1]
		d := (mod.TotalMW - base.TotalMW) / base.TotalMW * 100
		if d < -15 || d > 15 {
			t.Errorf("%s: +M stack changed power by %.1f%%, want small effect", base.Circuit, d)
		}
	}
}

func TestTable8PinCapParadox(t *testing.T) {
	s := study()
	rows, err := s.Table8()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	// Absolute power must drop as pin caps shrink (2D rows: indexes 0,2,4,6).
	for i := 2; i < len(rows); i += 2 {
		if rows[i].TotalMW >= rows[i-2].TotalMW {
			t.Errorf("2D power should fall with smaller pin caps: %v then %v",
				rows[i-2].TotalMW, rows[i].TotalMW)
		}
	}
	// The paper's surprise: the T-MI benefit does NOT grow with pin-cap
	// reduction (it shrinks or stays flat).
	base := rows[1].ReductionPercent
	p60 := rows[7].ReductionPercent
	if p60 < base-3 {
		t.Errorf("T-MI benefit grew sharply with smaller pin caps (%.1f%% → %.1f%%), contradicting Table 8",
			-base, -p60)
	}
}

// TestRenderAll exercises every renderer on the shared (cached) study.
func TestRenderAll(t *testing.T) {
	s := study()
	type gen struct {
		name string
		fn   func() (string, error)
	}
	gens := []gen{
		{"t2", RenderTable2},
		{"t4", func() (string, error) { return s.RenderSummary(tech.N45) }},
		{"t5", s.RenderTable5},
		{"t8", s.RenderTable8},
		{"t9", s.RenderTable9},
		{"t11", RenderTable11},
		{"t12", s.RenderTable12},
		{"t13", func() (string, error) { return s.RenderDetail(tech.N45) }},
		{"t15", s.RenderTable15},
		{"t16", s.RenderTable16},
		{"t17", s.RenderTable17},
		{"f4", s.RenderFig4},
		{"f6", s.RenderFig6},
		{"f10", s.RenderFig10},
		{"f11", func() (string, error) { return s.RenderFig11([]string{"AES"}) }},
	}
	for _, g := range gens {
		out, err := g.fn()
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		if len(out) < 50 || !strings.Contains(out, "\n") {
			t.Errorf("%s: suspiciously short render:\n%s", g.name, out)
		}
	}
}
