// Package core is the study API: it drives every experiment of the paper —
// each table and figure of the evaluation — on top of the full flow, and
// holds the published reference data used for comparisons. This is the
// package the example programs and the experiment harness build on.
package core

import (
	"fmt"
	"sync"

	"tmi3d/internal/flow"
	"tmi3d/internal/power"
	"tmi3d/internal/tech"
)

// Study runs the paper's experiments at a chosen circuit scale (1.0 = the
// paper's full benchmark sizes; smaller scales keep every relationship while
// trimming wall-clock time). Flow results are cached and shared between
// experiments, exactly as the paper reuses its base layouts.
type Study struct {
	Scale float64
	Seed  uint64

	mu    sync.Mutex
	cache map[string]*flow.Result
}

// NewStudy creates a study at the given scale.
func NewStudy(scale float64) *Study {
	if scale <= 0 {
		scale = 1.0
	}
	return &Study{Scale: scale, cache: map[string]*flow.Result{}}
}

// run executes (or retrieves) one flow configuration.
func (s *Study) run(cfg flow.Config) (*flow.Result, error) {
	cfg.Scale = s.Scale
	cfg.Seed = s.Seed
	key := fmt.Sprintf("%s|%v|%v|%.0f|%.2f|%.2f|%v|%v|%v", cfg.Circuit, cfg.Node, cfg.Mode,
		cfg.ClockPs, cfg.Util, cfg.PinCapScale, cfg.Use2DWLM, cfg.ResistivityScale, cfg.Activities)
	s.mu.Lock()
	if r, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()
	r, err := flow.Run(cfg)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.cache[key] = r
	s.mu.Unlock()
	return r, nil
}

// Pair runs the 2D and T-MI flows of an iso-performance comparison.
func (s *Study) Pair(circuit string, node tech.Node) (d2, d3 *flow.Result, err error) {
	d2, err = s.run(flow.Config{Circuit: circuit, Node: node, Mode: tech.Mode2D})
	if err != nil {
		return nil, nil, err
	}
	d3, err = s.run(flow.Config{Circuit: circuit, Node: node, Mode: tech.ModeTMI})
	if err != nil {
		return nil, nil, err
	}
	return d2, d3, nil
}

// pct returns the percentage difference of b over a.
func pct(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (b - a) / a * 100
}

var _ = power.DefaultActivities // referenced by experiment files
