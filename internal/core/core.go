// Package core is the study API: it drives every experiment of the paper —
// each table and figure of the evaluation — on top of the full flow, and
// holds the published reference data used for comparisons. This is the
// package the example programs and the experiment harness build on.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"tmi3d/internal/flow"
	"tmi3d/internal/power"
	"tmi3d/internal/report"
	"tmi3d/internal/tech"
)

// Study runs the paper's experiments at a chosen circuit scale (1.0 = the
// paper's full benchmark sizes; smaller scales keep every relationship while
// trimming wall-clock time). Flow results are cached and shared between
// experiments, exactly as the paper reuses its base layouts.
//
// A Study is safe for concurrent use. Identical configurations are
// deduplicated singleflight-style: concurrent callers of the same config
// block on one flow.Run, while distinct configs proceed in parallel. The
// experiment matrix fans out through RunAll/Pairs over a bounded worker
// pool, and because every flow's randomness derives purely from its config
// (flow.Config.DeriveSeed), parallel execution is bit-identical to serial.
type Study struct {
	Scale float64
	Seed  uint64
	// Workers bounds the number of flows RunAll executes concurrently;
	// 0 means GOMAXPROCS. 1 reproduces the serial driver exactly.
	Workers int
	// IntraWorkers is the per-flow worker budget handed to the parallel
	// stage loops (flow.Config.Workers). 0 splits GOMAXPROCS across the
	// flow pool so pool × intra never oversubscribes the machine. Results
	// are byte-identical at any value.
	IntraWorkers int
	// Runner, when set, replaces flow.Run as the flow executor. The staged
	// engine's Run plugs in here (byte-identical by contract), so an
	// experiment matrix reuses per-stage artifacts across its sweep points
	// instead of only deduplicating whole-flow repeats. Set before first use.
	Runner func(flow.Config) (*flow.Result, error)

	mu       sync.Mutex
	cache    map[string]*flow.Result
	inflight map[string]*inflightRun

	// runFlow is the flow executor, replaceable by tests to count or stub
	// executions; nil means flow.Run.
	runFlow func(flow.Config) (*flow.Result, error)

	// Per-stage wall-clock totals across every flow this study executed
	// (cache hits and deduplicated waiters excluded) — the profile behind
	// StageReport.
	stageMu      sync.Mutex
	stageTotals  map[string]time.Duration
	stageWorkers map[string]int
	stageOrder   []string
	flowsRun     int
}

// inflightRun is one in-progress flow execution; latecomers for the same key
// wait on done instead of launching a duplicate run (cache stampede fix).
type inflightRun struct {
	done chan struct{}
	res  *flow.Result
	err  error
}

// NewStudy creates a study at the given scale.
func NewStudy(scale float64) *Study {
	if scale <= 0 {
		scale = 1.0
	}
	return &Study{
		Scale:        scale,
		cache:        map[string]*flow.Result{},
		inflight:     map[string]*inflightRun{},
		stageTotals:  map[string]time.Duration{},
		stageWorkers: map[string]int{},
	}
}

// workers resolves the effective pool size.
func (s *Study) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// intraWorkers resolves the per-flow worker budget: the explicit setting,
// or the cores left per pool slot once the flow pool has claimed its share.
func (s *Study) intraWorkers() int {
	if s.IntraWorkers > 0 {
		return s.IntraWorkers
	}
	n := runtime.GOMAXPROCS(0) / s.workers()
	if n < 1 {
		n = 1
	}
	return n
}

// run executes (or retrieves) one flow configuration. The cache key is the
// canonical full-precision flow.Config.Key — every result-affecting field
// participates, so sweep points separated by less than a rounding unit (the
// old %.0f ClockPs key collided Fig 4 points under 1 ps apart) stay
// distinct. The check and the run are bridged by an inflight map: the first
// caller of a key executes, every concurrent caller of the same key waits
// for that single execution.
func (s *Study) run(cfg flow.Config) (*flow.Result, error) {
	cfg.Scale = s.Scale
	cfg.Seed = s.Seed
	cfg.Workers = s.intraWorkers()
	// Workers is deliberately outside the cache key (flow keeps it
	// //tmi3dvet:nonkey): any budget produces identical bytes, so runs at
	// different worker counts share cache entries.
	key := cfg.Key()

	s.mu.Lock()
	if r, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return r, nil
	}
	if f, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		<-f.done
		return f.res, f.err
	}
	f := &inflightRun{done: make(chan struct{})}
	s.inflight[key] = f
	s.mu.Unlock()

	runner := s.runFlow
	if runner == nil {
		runner = s.Runner
	}
	if runner == nil {
		runner = flow.Run
	}
	f.res, f.err = runner(cfg)

	s.mu.Lock()
	if f.err == nil {
		s.cache[key] = f.res
	}
	// Errors are delivered to every waiter of this round but not cached:
	// a later call gets a fresh attempt.
	delete(s.inflight, key)
	s.mu.Unlock()
	close(f.done)

	if f.err == nil {
		s.recordStages(f.res)
	}
	return f.res, f.err
}

// RunAll executes every configuration across a worker pool of s.Workers
// (GOMAXPROCS when zero) and returns results in input order. Duplicate
// configs in cfgs are deduplicated by the inflight map and share one
// execution. On failure the error of the lowest-index failing config is
// returned, so the error is deterministic under any scheduling.
func (s *Study) RunAll(cfgs []flow.Config) ([]*flow.Result, error) {
	res := make([]*flow.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	sem := make(chan struct{}, s.workers())
	var wg sync.WaitGroup
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res[i], errs[i] = s.run(cfgs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("config %d (%s/%v/%v): %w",
				i, cfgs[i].Circuit, cfgs[i].Node, cfgs[i].Mode, err)
		}
	}
	return res, nil
}

// Pairs runs the iso-performance 2D/T-MI comparison for every circuit at a
// node across the worker pool, returning [i] = {2D, T-MI} in circuit order.
func (s *Study) Pairs(circuitNames []string, node tech.Node) ([][2]*flow.Result, error) {
	cfgs := make([]flow.Config, 0, 2*len(circuitNames))
	for _, name := range circuitNames {
		cfgs = append(cfgs,
			flow.Config{Circuit: name, Node: node, Mode: tech.Mode2D},
			flow.Config{Circuit: name, Node: node, Mode: tech.ModeTMI})
	}
	rs, err := s.RunAll(cfgs)
	if err != nil {
		return nil, err
	}
	pairs := make([][2]*flow.Result, len(circuitNames))
	for i := range pairs {
		pairs[i] = [2]*flow.Result{rs[2*i], rs[2*i+1]}
	}
	return pairs, nil
}

// Pair runs the 2D and T-MI flows of an iso-performance comparison.
func (s *Study) Pair(circuit string, node tech.Node) (d2, d3 *flow.Result, err error) {
	pairs, err := s.Pairs([]string{circuit}, node)
	if err != nil {
		return nil, nil, err
	}
	return pairs[0][0], pairs[0][1], nil
}

// recordStages folds one completed flow's stage profile into the study
// totals.
func (s *Study) recordStages(r *flow.Result) {
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
	s.flowsRun++
	for _, st := range r.StageTimes {
		if _, ok := s.stageTotals[st.Stage]; !ok {
			s.stageOrder = append(s.stageOrder, st.Stage)
		}
		s.stageTotals[st.Stage] += st.D
		if st.Workers > s.stageWorkers[st.Stage] {
			s.stageWorkers[st.Stage] = st.Workers
		}
	}
}

// FlowsRun reports how many flows this study actually executed (cache hits
// and deduplicated concurrent callers do not count).
func (s *Study) FlowsRun() int {
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
	return s.flowsRun
}

// StageReport renders the aggregate per-stage wall-clock profile of every
// flow the study executed — where the compute went, and which stages
// dominate the remaining serial bottleneck of a parallel run.
func (s *Study) StageReport() string {
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
	var total time.Duration
	for _, d := range s.stageTotals {
		total += d
	}
	t := report.New(fmt.Sprintf("Flow stage timing — %d flows executed, %.1f s total flow compute",
		s.flowsRun, total.Seconds()), "stage", "total s", "share", "workers")
	for _, stage := range s.stageOrder {
		d := s.stageTotals[stage]
		share := 0.0
		if total > 0 {
			share = 100 * float64(d) / float64(total)
		}
		w := s.stageWorkers[stage]
		if w < 1 {
			w = 1
		}
		t.Add(stage, report.F(d.Seconds(), 2), report.F(share, 1)+"%", fmt.Sprintf("%d", w))
	}
	return t.String()
}

// pct returns the percentage difference of b over a. A zero baseline has no
// defined percentage: the result is NaN (renderers print "n/a"), except for
// the degenerate zero-over-zero case where nothing changed at all.
func pct(a, b float64) float64 {
	if a == 0 {
		if b == 0 {
			return 0
		}
		return math.NaN()
	}
	return (b - a) / a * 100
}

var _ = power.DefaultActivities // referenced by experiment files
