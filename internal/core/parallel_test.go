package core

// Tests for the parallel experiment engine: cache-key precision, stampede
// (singleflight) dedup, deterministic fan-out, and the serial/parallel
// bit-identity contract.

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tmi3d/internal/flow"
	"tmi3d/internal/report"
	"tmi3d/internal/tech"
)

// stubStudy returns a study whose flow executor is replaced by a counting
// stub, so cache semantics are testable without multi-second flows.
func stubStudy(runner func(flow.Config) (*flow.Result, error)) (*Study, *int64) {
	s := NewStudy(0.1)
	var calls int64
	s.runFlow = func(cfg flow.Config) (*flow.Result, error) {
		atomic.AddInt64(&calls, 1)
		return runner(cfg)
	}
	return s, &calls
}

// Regression for the %.0f cache-key collision: two sweep points 0.4 ps
// apart must execute as two distinct flows and return distinct results.
func TestRunCacheKeyCollision(t *testing.T) {
	s, calls := stubStudy(func(cfg flow.Config) (*flow.Result, error) {
		return &flow.Result{Config: cfg}, nil
	})
	a, err := s.run(flow.Config{Circuit: "AES", Node: tech.N45, Mode: tech.Mode2D, ClockPs: 1000.0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.run(flow.Config{Circuit: "AES", Node: tech.N45, Mode: tech.Mode2D, ClockPs: 1000.4})
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("configs 0.4 ps apart returned the same cached result")
	}
	if a.Config.ClockPs == b.Config.ClockPs {
		t.Fatalf("wrong layout served: both results claim ClockPs %v", a.Config.ClockPs)
	}
	if n := atomic.LoadInt64(calls); n != 2 {
		t.Fatalf("flow executed %d times, want 2", n)
	}
	// Identical config: cache hit, no third execution.
	c, err := s.run(flow.Config{Circuit: "AES", Node: tech.N45, Mode: tech.Mode2D, ClockPs: 1000.0})
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Error("exact repeat did not hit the cache")
	}
	if n := atomic.LoadInt64(calls); n != 2 {
		t.Errorf("flow executed %d times after repeat, want 2", n)
	}
}

// Regression for the check-then-run stampede: N concurrent callers of one
// config must trigger exactly one flow execution, and every caller gets the
// same result.
func TestRunStampedeSingleflight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var startOnce sync.Once
	s, calls := stubStudy(func(cfg flow.Config) (*flow.Result, error) {
		startOnce.Do(func() { close(started) })
		<-release
		return &flow.Result{Config: cfg}, nil
	})

	const goroutines = 32
	results := make([]*flow.Result, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = s.run(flow.Config{Circuit: "LDPC", Node: tech.N45, Mode: tech.ModeTMI})
		}(g)
	}
	<-started
	// Give latecomers time to reach the lookup while the flow is inflight —
	// under the old check-then-run they would all start their own flow.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := atomic.LoadInt64(calls); n != 1 {
		t.Fatalf("flow executed %d times for one config, want exactly 1", n)
	}
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if results[g] != results[0] {
			t.Fatalf("goroutine %d received a different result", g)
		}
	}
}

// Errors reach every concurrent waiter but are not cached: the next call
// retries.
func TestRunErrorNotCached(t *testing.T) {
	fail := errors.New("transient")
	var attempt int64
	s := NewStudy(0.1)
	s.runFlow = func(cfg flow.Config) (*flow.Result, error) {
		if atomic.AddInt64(&attempt, 1) == 1 {
			return nil, fail
		}
		return &flow.Result{Config: cfg}, nil
	}
	cfg := flow.Config{Circuit: "DES", Node: tech.N7, Mode: tech.Mode2D}
	if _, err := s.run(cfg); !errors.Is(err, fail) {
		t.Fatalf("first call: %v, want %v", err, fail)
	}
	r, err := s.run(cfg)
	if err != nil || r == nil {
		t.Fatalf("retry after error: %v", err)
	}
}

// RunAll preserves input order, deduplicates repeated configs, and returns
// identical results at any worker count.
func TestRunAllDeterministicOrder(t *testing.T) {
	mk := func(workers int) ([]*flow.Result, int64) {
		s, calls := stubStudy(func(cfg flow.Config) (*flow.Result, error) {
			// Stagger by clock so completion order != input order.
			time.Sleep(time.Duration(int(cfg.ClockPs)%7) * time.Millisecond)
			return &flow.Result{Config: cfg}, nil
		})
		s.Workers = workers
		var cfgs []flow.Config
		for i := 0; i < 12; i++ {
			cfgs = append(cfgs, flow.Config{Circuit: "AES", Node: tech.N45, ClockPs: float64(1000 + i%6)})
		}
		rs, err := s.RunAll(cfgs)
		if err != nil {
			t.Fatal(err)
		}
		return rs, atomic.LoadInt64(calls)
	}
	serial, nSerial := mk(1)
	parallel, nParallel := mk(8)
	if nSerial != 6 || nParallel != 6 {
		t.Errorf("executions serial=%d parallel=%d, want 6 each (dedup)", nSerial, nParallel)
	}
	for i := range serial {
		if serial[i].Config.ClockPs != parallel[i].Config.ClockPs {
			t.Fatalf("result %d differs between -j 1 and -j 8", i)
		}
		if serial[i].Config.ClockPs != float64(1000+i%6) {
			t.Fatalf("result %d out of input order", i)
		}
	}
}

// RunAll reports the error of the lowest-index failing config regardless of
// scheduling, so parallel failures are reproducible.
func TestRunAllDeterministicError(t *testing.T) {
	s, _ := stubStudy(func(cfg flow.Config) (*flow.Result, error) {
		if cfg.ClockPs == 1002 || cfg.ClockPs == 1005 {
			return nil, fmt.Errorf("boom at %v", cfg.ClockPs)
		}
		return &flow.Result{Config: cfg}, nil
	})
	s.Workers = 8
	var cfgs []flow.Config
	for i := 0; i < 8; i++ {
		cfgs = append(cfgs, flow.Config{Circuit: "FPU", Node: tech.N45, ClockPs: float64(1000 + i)})
	}
	for trial := 0; trial < 4; trial++ {
		_, err := s.RunAll(cfgs)
		if err == nil || !strings.Contains(err.Error(), "boom at 1002") {
			t.Fatalf("trial %d: error %v, want the lowest-index failure (1002)", trial, err)
		}
	}
}

// The serial/parallel bit-identity contract on real flows: the same pair run
// through a -j 1 study and a -j 4 study must produce identical numbers. The
// parallel study also turns on the intra-flow worker fleet, so this covers
// both axes of parallelism — across flows and inside each flow's stage loops.
func TestParallelMatchesSerialRealFlows(t *testing.T) {
	cfgs := []flow.Config{
		{Circuit: "FPU", Node: tech.N45, Mode: tech.Mode2D},
		{Circuit: "FPU", Node: tech.N45, Mode: tech.ModeTMI},
	}
	serial := NewStudy(0.1)
	serial.Workers = 1
	serial.IntraWorkers = 1
	parallel := NewStudy(0.1)
	parallel.Workers = 4
	parallel.IntraWorkers = 3

	rsSerial, err := serial.RunAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	rsParallel, err := parallel.RunAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		a, b := rsSerial[i], rsParallel[i]
		if a.Power.Total != b.Power.Total || a.TotalWL != b.TotalWL ||
			a.WNS != b.WNS || a.Footprint != b.Footprint ||
			a.NumCells != b.NumCells || a.NumBuffers != b.NumBuffers {
			t.Errorf("config %d: serial and parallel results differ:\n"+
				"serial   power=%v wl=%v wns=%v fp=%v cells=%d buf=%d\n"+
				"parallel power=%v wl=%v wns=%v fp=%v cells=%d buf=%d",
				i, a.Power.Total, a.TotalWL, a.WNS, a.Footprint, a.NumCells, a.NumBuffers,
				b.Power.Total, b.TotalWL, b.WNS, b.Footprint, b.NumCells, b.NumBuffers)
		}
	}
	if serial.FlowsRun() != 2 || parallel.FlowsRun() != 2 {
		t.Errorf("flows executed serial=%d parallel=%d, want 2 each", serial.FlowsRun(), parallel.FlowsRun())
	}
	if !strings.Contains(serial.StageReport(), "synth") {
		t.Error("stage report missing synth stage")
	}
}

// pct must not fabricate a 0% delta over a zero baseline; renderers print
// "n/a" for the undefined case.
func TestPctZeroBaseline(t *testing.T) {
	if !math.IsNaN(pct(0, 5)) {
		t.Errorf("pct(0, 5) = %v, want NaN", pct(0, 5))
	}
	if pct(0, 0) != 0 {
		t.Errorf("pct(0, 0) = %v, want 0", pct(0, 0))
	}
	if pct(10, 5) != -50 {
		t.Errorf("pct(10, 5) = %v, want -50", pct(10, 5))
	}
	if got := report.Pct(pct(0, 5)); got != "n/a" {
		t.Errorf("rendered zero-baseline delta %q, want n/a", got)
	}
	if got := report.F(math.NaN(), 2); got != "n/a" {
		t.Errorf("report.F(NaN) = %q, want n/a", got)
	}
}
