package core

import (
	"tmi3d/internal/circuits"
	"tmi3d/internal/flow"
	"tmi3d/internal/liberty"
	"tmi3d/internal/report"
	"tmi3d/internal/synth"
	"tmi3d/internal/tech"
	"tmi3d/internal/wlm"
)

// SummaryRow is one circuit of the layout summary (Tables 4 and 7): the
// percentage difference of T-MI over 2D.
type SummaryRow struct {
	Circuit   string
	Footprint float64
	Wirelen   float64
	Total     float64
	Cell      float64
	Net       float64
	Leakage   float64
	// Paper holds the published deltas in the same order.
	Paper [6]float64
}

var table4Paper = map[string][6]float64{
	"FPU":  {-41.7, -26.3, -14.5, -9.4, -19.5, -11.1},
	"AES":  {-42.4, -23.6, -10.9, -7.6, -13.9, -9.5},
	"LDPC": {-43.2, -33.6, -32.1, -12.8, -39.2, -21.7},
	"DES":  {-40.9, -21.5, -4.1, -1.6, -7.7, -1.4},
	"M256": {-43.4, -28.4, -17.5, -10.7, -22.2, -12.9},
}

var table7Paper = map[string][6]float64{
	"FPU":  {-47.0, -34.2, -37.3, -32.4, -44.4, -21.0},
	"AES":  {-62.0, -47.8, -19.8, -10.3, -28.4, -28.5},
	"LDPC": {-42.9, -27.7, -19.1, -3.7, -26.6, -3.5},
	"DES":  {-40.8, -21.9, -3.4, -1.3, -7.3, -3.0},
	"M256": {-44.6, -23.0, -17.8, -14.1, -23.0, -2.4},
}

// Summary runs the full iso-performance comparison for every benchmark at a
// node — Table 4 (45nm) or Table 7 (7nm).
func (s *Study) Summary(node tech.Node) ([]SummaryRow, error) {
	paper := table4Paper
	if node == tech.N7 {
		paper = table7Paper
	}
	pairs, err := s.Pairs(circuits.Names, node)
	if err != nil {
		return nil, err
	}
	var rows []SummaryRow
	for i, name := range circuits.Names {
		d2, d3 := pairs[i][0], pairs[i][1]
		rows = append(rows, SummaryRow{
			Circuit:   name,
			Footprint: pct(d2.Footprint, d3.Footprint),
			Wirelen:   pct(d2.TotalWL, d3.TotalWL),
			Total:     pct(d2.Power.Total, d3.Power.Total),
			Cell:      pct(d2.Power.Cell, d3.Power.Cell),
			Net:       pct(d2.Power.Net, d3.Power.Net),
			Leakage:   pct(d2.Power.Leakage, d3.Power.Leakage),
			Paper:     paper[name],
		})
	}
	return rows, nil
}

// RenderSummary formats Table 4 / Table 7.
func (s *Study) RenderSummary(node tech.Node) (string, error) {
	rows, err := s.Summary(node)
	if err != nil {
		return "", err
	}
	title := "Table 4: 45nm layout summary, T-MI vs 2D (paper in parentheses)"
	if node == tech.N7 {
		title = "Table 7: 7nm layout summary, T-MI vs 2D (paper in parentheses)"
	}
	t := report.New(title, "circuit", "footprint", "wirelen", "total power", "cell", "net", "leakage")
	for _, r := range rows {
		t.AddRow([]string{
			r.Circuit,
			report.Pct(r.Footprint) + " (" + report.Pct(r.Paper[0]) + ")",
			report.Pct(r.Wirelen) + " (" + report.Pct(r.Paper[1]) + ")",
			report.Pct(r.Total) + " (" + report.Pct(r.Paper[2]) + ")",
			report.Pct(r.Cell) + " (" + report.Pct(r.Paper[3]) + ")",
			report.Pct(r.Net) + " (" + report.Pct(r.Paper[4]) + ")",
			report.Pct(r.Leakage) + " (" + report.Pct(r.Paper[5]) + ")",
		})
	}
	return t.String(), nil
}

// DetailRow is one design of the detailed layout results (Tables 13/14).
type DetailRow struct {
	Circuit    string
	Mode       tech.Mode
	Footprint  float64 // µm²
	NumCells   int
	NumBuffers int
	Util       float64 // %
	TotalWL    float64 // µm
	WNS        float64 // ps
	TotalPower float64 // mW
	CellPower  float64
	NetPower   float64
	Leakage    float64
}

// Detail runs both modes of every circuit at a node (Tables 13 and 14).
func (s *Study) Detail(node tech.Node) ([]DetailRow, error) {
	pairs, err := s.Pairs(circuits.Names, node)
	if err != nil {
		return nil, err
	}
	var rows []DetailRow
	for i, name := range circuits.Names {
		for _, r := range []*flow.Result{pairs[i][0], pairs[i][1]} {
			rows = append(rows, DetailRow{
				Circuit:    name,
				Mode:       r.Config.Mode,
				Footprint:  r.Footprint,
				NumCells:   r.NumCells,
				NumBuffers: r.NumBuffers,
				Util:       r.Util * 100,
				TotalWL:    r.TotalWL,
				WNS:        r.WNS,
				TotalPower: r.Power.Total,
				CellPower:  r.Power.Cell,
				NetPower:   r.Power.Net,
				Leakage:    r.Power.Leakage,
			})
		}
	}
	return rows, nil
}

// RenderDetail formats Table 13 / Table 14.
func (s *Study) RenderDetail(node tech.Node) (string, error) {
	rows, err := s.Detail(node)
	if err != nil {
		return "", err
	}
	title := "Table 13: detailed 45nm layout results"
	if node == tech.N7 {
		title = "Table 14: detailed 7nm layout results"
	}
	t := report.New(title, "circuit", "type", "footprint µm²", "#cells", "#buffers",
		"util %", "WL µm", "WNS ps", "total mW", "cell", "net", "leak")
	for _, r := range rows {
		t.Add(r.Circuit, r.Mode.String(), report.F(r.Footprint, 0), r.NumCells, r.NumBuffers,
			report.F(r.Util, 1), report.F(r.TotalWL, 0), report.F(r.WNS, 0),
			report.F(r.TotalPower, 2), report.F(r.CellPower, 2), report.F(r.NetPower, 2),
			report.F(r.Leakage, 3))
	}
	return t.String(), nil
}

// Table12Row is one circuit × node of the benchmark/synthesis summary.
type Table12Row struct {
	Circuit       string
	Node          tech.Node
	TargetClockNs float64 // the paper's target (pre-calibration)
	NumCells      int
	CellArea      float64 // µm²
	NumNets       int
	AvgFanout     float64
}

// Table12 synthesizes every benchmark at both nodes and reports the
// statistics of the paper's Table 12 (2D results, as in the paper).
func (s *Study) Table12() ([]Table12Row, error) {
	var rows []Table12Row
	for _, node := range []tech.Node{tech.N45, tech.N7} {
		lib, err := liberty.Default(node, tech.Mode2D)
		if err != nil {
			return nil, err
		}
		for _, name := range circuits.Names {
			d, err := circuits.Generate(name, s.Scale)
			if err != nil {
				return nil, err
			}
			clock, _ := circuits.TargetClockPs(name, node)
			dd := d.Clone()
			dd.TargetClockPs = clock * flow.ClockCalibrationFactor(name, node)
			areaEst := 0.0
			for i := range dd.Instances {
				if c := lib.Cell(dd.Instances[i].Func + "_X1"); c != nil {
					areaEst += c.Area
				}
			}
			model := wlm.BuildForMode(node, tech.Mode2D, areaEst/circuits.TargetUtilization(name))
			sr, err := synth.Run(dd, synth.Options{Lib: lib, WLM: model})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table12Row{
				Circuit:       name,
				Node:          node,
				TargetClockNs: clock / 1000,
				NumCells:      sr.Stats.NumCells,
				CellArea:      sr.CellArea,
				NumNets:       sr.Stats.NumNets,
				AvgFanout:     sr.Stats.AverageFanout,
			})
		}
	}
	return rows, nil
}

// RenderTable12 formats Table 12.
func (s *Study) RenderTable12() (string, error) {
	rows, err := s.Table12()
	if err != nil {
		return "", err
	}
	t := report.New("Table 12: benchmark circuits and synthesis results",
		"node", "circuit", "clock ns", "#cells", "area µm²", "#nets", "avg fanout")
	for _, r := range rows {
		t.Add(r.Node.String(), r.Circuit, report.F(r.TargetClockNs, 2), r.NumCells,
			report.F(r.CellArea, 0), r.NumNets, report.F(r.AvgFanout, 2))
	}
	return t.String(), nil
}
