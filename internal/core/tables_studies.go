package core

import (
	"tmi3d/internal/flow"
	"tmi3d/internal/report"
	"tmi3d/internal/tech"
)

// Table5Row compares a design point with the published prior-work numbers.
type Table5Row struct {
	Circuit string
	Source  string // "ours", "[2]", "[7]"
	Mode    string
	WLm     float64 // total wirelength, m
	DelayNs float64 // longest path delay, ns
	PowerMW float64
}

// priorWork holds the published Table 5 reference rows from CELONCEL [2]
// (Bobba et al., ASPDAC'11, INTRACEL timing-driven+IPO) and the ICCAD'12
// transistor-level monolithic work [7] (3TM setup).
var priorWork = []Table5Row{
	{"AES", "[7]", "2D", 0.271, 1.310, 13.7},
	{"AES", "[7]", "3D", 0.214, 1.165, 12.8},
	{"LDPC", "[2]", "2D", 1.83, 2.461, 1554},
	{"LDPC", "[2]", "3D", 1.60, 2.421, 1461},
	{"DES", "[2]", "2D", 0.671, 1.132, 620.2},
	{"DES", "[2]", "3D", 0.581, 0.971, 608.2},
	{"DES", "[7]", "2D", 0.849, 1.086, 134.9},
	{"DES", "[7]", "3D", 0.682, 0.923, 130.7},
}

// Table5 assembles our AES/LDPC/DES results next to the published rows.
func (s *Study) Table5() ([]Table5Row, error) {
	names := []string{"AES", "LDPC", "DES"}
	pairs, err := s.Pairs(names, tech.N45)
	if err != nil {
		return nil, err
	}
	var rows []Table5Row
	for i, name := range names {
		for _, r := range []*flow.Result{pairs[i][0], pairs[i][1]} {
			mode := "2D"
			if r.Config.Mode.Is3D() {
				mode = "3D"
			}
			rows = append(rows, Table5Row{
				Circuit: name, Source: "ours", Mode: mode,
				WLm:     r.TotalWL / 1e6,
				DelayNs: (r.ClockPs - r.WNS) / 1000,
				PowerMW: r.Power.Total,
			})
		}
		for _, p := range priorWork {
			if p.Circuit == name {
				rows = append(rows, p)
			}
		}
	}
	return rows, nil
}

// RenderTable5 formats Table 5.
func (s *Study) RenderTable5() (string, error) {
	rows, err := s.Table5()
	if err != nil {
		return "", err
	}
	t := report.New("Table 5: design results vs previous works (absolute values are not comparable across flows)",
		"circuit", "source", "type", "WL m", "longest path ns", "power mW")
	for _, r := range rows {
		t.Add(r.Circuit, r.Source, r.Mode, report.F(r.WLm, 3), report.F(r.DelayNs, 3), report.F(r.PowerMW, 2))
	}
	return t.String(), nil
}

// Table8Row is one pin-cap scenario of the DES 7nm study.
type Table8Row struct {
	Variant          string // "", "-p20", "-p40", "-p60"
	Mode             tech.Mode
	WLmm             float64
	TotalMW, CellMW  float64
	NetMW, LeakMW    float64
	ReductionPercent float64 // T-MI total power delta for this variant
}

// Table8 reproduces the pin-cap reduction study: DES at 7nm with library pin
// capacitances reduced by 0/20/40/60%.
func (s *Study) Table8() ([]Table8Row, error) {
	variants := []struct {
		suffix string
		scale  float64
	}{
		{"", 1.0}, {"-p20", 0.8}, {"-p40", 0.6}, {"-p60", 0.4},
	}
	var cfgs []flow.Config
	for _, v := range variants {
		for _, mode := range []tech.Mode{tech.Mode2D, tech.ModeTMI} {
			cfgs = append(cfgs, flow.Config{
				Circuit: "DES", Node: tech.N7, Mode: mode, PinCapScale: v.scale,
			})
		}
	}
	rs, err := s.RunAll(cfgs)
	if err != nil {
		return nil, err
	}
	var rows []Table8Row
	for i, v := range variants {
		pair := [2]*flow.Result{rs[2*i], rs[2*i+1]}
		red := pct(pair[0].Power.Total, pair[1].Power.Total)
		for _, r := range pair {
			rows = append(rows, Table8Row{
				Variant: v.suffix, Mode: r.Config.Mode,
				WLmm:    r.TotalWL / 1000,
				TotalMW: r.Power.Total, CellMW: r.Power.Cell,
				NetMW: r.Power.Net, LeakMW: r.Power.Leakage,
				ReductionPercent: red,
			})
		}
	}
	return rows, nil
}

// RenderTable8 formats Table 8.
func (s *Study) RenderTable8() (string, error) {
	rows, err := s.Table8()
	if err != nil {
		return "", err
	}
	t := report.New("Table 8: impact of lower cell pin cap (DES, 7nm)",
		"design", "WL mm", "total mW", "cell", "net", "leak", "T-MI Δtotal")
	for _, r := range rows {
		t.Add("DES-"+modeShort(r.Mode)+r.Variant, report.F(r.WLmm, 1),
			report.F(r.TotalMW, 3), report.F(r.CellMW, 3), report.F(r.NetMW, 3),
			report.F(r.LeakMW, 3), report.Pct(r.ReductionPercent))
	}
	return t.String(), nil
}

func modeShort(m tech.Mode) string {
	if m.Is3D() {
		return "3D"
	}
	return "2D"
}

// Table9Row is one resistivity scenario of the M256 7nm study.
type Table9Row struct {
	Variant                        string // "" or "-m"
	Mode                           tech.Mode
	WLmm                           float64
	TotalMW, CellMW, NetMW, LeakMW float64
	ReductionPercent               float64
}

// Table9 reproduces the lower-metal-resistivity study: M256 at 7nm with the
// local and intermediate layer resistivity halved.
func (s *Study) Table9() ([]Table9Row, error) {
	variants := []struct {
		suffix string
		scale  map[tech.LayerClass]float64
	}{
		{"", nil},
		{"-m", map[tech.LayerClass]float64{
			tech.ClassM1: 0.5, tech.ClassLocal: 0.5, tech.ClassIntermediate: 0.5,
		}},
	}
	var cfgs []flow.Config
	for _, v := range variants {
		for _, mode := range []tech.Mode{tech.Mode2D, tech.ModeTMI} {
			cfgs = append(cfgs, flow.Config{
				Circuit: "M256", Node: tech.N7, Mode: mode, ResistivityScale: v.scale,
			})
		}
	}
	rs, err := s.RunAll(cfgs)
	if err != nil {
		return nil, err
	}
	var rows []Table9Row
	for i, v := range variants {
		pair := [2]*flow.Result{rs[2*i], rs[2*i+1]}
		red := pct(pair[0].Power.Total, pair[1].Power.Total)
		for _, r := range pair {
			rows = append(rows, Table9Row{
				Variant: v.suffix, Mode: r.Config.Mode,
				WLmm:    r.TotalWL / 1000,
				TotalMW: r.Power.Total, CellMW: r.Power.Cell,
				NetMW: r.Power.Net, LeakMW: r.Power.Leakage,
				ReductionPercent: red,
			})
		}
	}
	return rows, nil
}

// RenderTable9 formats Table 9.
func (s *Study) RenderTable9() (string, error) {
	rows, err := s.Table9()
	if err != nil {
		return "", err
	}
	t := report.New("Table 9: impact of lower metal resistivity (M256, 7nm)",
		"design", "WL mm", "total mW", "cell", "net", "leak", "T-MI Δtotal")
	for _, r := range rows {
		t.Add("M256-"+modeShort(r.Mode)+r.Variant, report.F(r.WLmm, 1),
			report.F(r.TotalMW, 2), report.F(r.CellMW, 2), report.F(r.NetMW, 2),
			report.F(r.LeakMW, 2), report.Pct(r.ReductionPercent))
	}
	return t.String(), nil
}

// Table15Row compares a T-MI design synthesized with vs without its own WLM.
type Table15Row struct {
	Circuit string
	WithWLM bool
	WLmm    float64
	WNS     float64
	TotalMW float64
	DeltaWL float64 // -n over with-WLM, %
	DeltaP  float64
}

// Table15 reproduces the T-MI wire-load-model impact study: every circuit's
// T-MI design, synthesized with the T-MI WLM versus the 2D WLM ("-n").
func (s *Study) Table15() ([]Table15Row, error) {
	names := []string{"FPU", "AES", "LDPC", "DES", "M256"}
	var cfgs []flow.Config
	for _, name := range names {
		cfgs = append(cfgs,
			flow.Config{Circuit: name, Node: tech.N45, Mode: tech.ModeTMI},
			flow.Config{Circuit: name, Node: tech.N45, Mode: tech.ModeTMI, Use2DWLM: true})
	}
	rs, err := s.RunAll(cfgs)
	if err != nil {
		return nil, err
	}
	var rows []Table15Row
	for i, name := range names {
		with, without := rs[2*i], rs[2*i+1]
		dWL := pct(with.TotalWL, without.TotalWL)
		dP := pct(with.Power.Total, without.Power.Total)
		rows = append(rows,
			Table15Row{Circuit: name, WithWLM: true, WLmm: with.TotalWL / 1000, WNS: with.WNS, TotalMW: with.Power.Total},
			Table15Row{Circuit: name, WithWLM: false, WLmm: without.TotalWL / 1000, WNS: without.WNS, TotalMW: without.Power.Total, DeltaWL: dWL, DeltaP: dP},
		)
	}
	return rows, nil
}

// RenderTable15 formats Table 15.
func (s *Study) RenderTable15() (string, error) {
	rows, err := s.Table15()
	if err != nil {
		return "", err
	}
	t := report.New("Table 15: layout results with/without the T-MI wire load model ('-n' = 2D WLM)",
		"design", "WL mm", "WNS ps", "total mW", "ΔWL", "Δpower")
	for _, r := range rows {
		name := r.Circuit + "-3D"
		dwl, dp := "", ""
		if !r.WithWLM {
			name += "-n"
			dwl, dp = report.Pct(r.DeltaWL), report.Pct(r.DeltaP)
		}
		t.Add(name, report.F(r.WLmm, 1), report.F(r.WNS, 0), report.F(r.TotalMW, 2), dwl, dp)
	}
	return t.String(), nil
}

// Table16Row is the wire-vs-pin capacitance/power breakdown.
type Table16Row struct {
	Circuit                 string
	Mode                    tech.Mode
	WireCapPF, PinCapPF     float64
	WirePowerMW, PinPowerMW float64
}

// Table16 reproduces the net power breakdown for LDPC and DES at 45nm — the
// circuit-characteristics explanation of Section 4.3 / S8.
func (s *Study) Table16() ([]Table16Row, error) {
	names := []string{"LDPC", "DES"}
	pairs, err := s.Pairs(names, tech.N45)
	if err != nil {
		return nil, err
	}
	var rows []Table16Row
	for i, name := range names {
		for _, r := range []*flow.Result{pairs[i][0], pairs[i][1]} {
			rows = append(rows, Table16Row{
				Circuit: name, Mode: r.Config.Mode,
				WireCapPF: r.Power.WireCap, PinCapPF: r.Power.PinCap,
				WirePowerMW: r.Power.Wire, PinPowerMW: r.Power.Pin,
			})
		}
	}
	return rows, nil
}

// RenderTable16 formats Table 16.
func (s *Study) RenderTable16() (string, error) {
	rows, err := s.Table16()
	if err != nil {
		return "", err
	}
	t := report.New("Table 16: wire vs pin capacitance breakdown (45nm)",
		"design", "wire cap pF", "pin cap pF", "wire power mW", "pin power mW")
	for _, r := range rows {
		t.Add(r.Circuit+"-"+modeShort(r.Mode), report.F(r.WireCapPF, 1), report.F(r.PinCapPF, 1),
			report.F(r.WirePowerMW, 2), report.F(r.PinPowerMW, 2))
	}
	return t.String(), nil
}

// Table17Row is one metal-stack scenario of the T-MI+M study.
type Table17Row struct {
	Circuit                        string
	Stack                          tech.Mode // ModeTMI or ModeTMIM
	WLmm                           float64
	TotalMW, CellMW, NetMW, LeakMW float64
}

// Table17 reproduces the modified metal stack study: LDPC and M256 at 7nm
// with the T-MI+M stack (2 local + 2 intermediate layers added instead of 3
// local).
func (s *Study) Table17() ([]Table17Row, error) {
	var cfgs []flow.Config
	for _, name := range []string{"LDPC", "M256"} {
		for _, mode := range []tech.Mode{tech.ModeTMI, tech.ModeTMIM} {
			cfgs = append(cfgs, flow.Config{Circuit: name, Node: tech.N7, Mode: mode})
		}
	}
	rs, err := s.RunAll(cfgs)
	if err != nil {
		return nil, err
	}
	var rows []Table17Row
	for _, r := range rs {
		rows = append(rows, Table17Row{
			Circuit: r.Config.Circuit, Stack: r.Config.Mode,
			WLmm:    r.TotalWL / 1000,
			TotalMW: r.Power.Total, CellMW: r.Power.Cell,
			NetMW: r.Power.Net, LeakMW: r.Power.Leakage,
		})
	}
	return rows, nil
}

// RenderTable17 formats Table 17.
func (s *Study) RenderTable17() (string, error) {
	rows, err := s.Table17()
	if err != nil {
		return "", err
	}
	t := report.New("Table 17: impact of the modified metal stack ('+M') at 7nm",
		"design", "WL mm", "total mW", "cell", "net", "leak")
	for _, r := range rows {
		name := r.Circuit + "-3D"
		if r.Stack == tech.ModeTMIM {
			name += "+M"
		}
		t.Add(name, report.F(r.WLmm, 1), report.F(r.TotalMW, 2), report.F(r.CellMW, 2),
			report.F(r.NetMW, 2), report.F(r.LeakMW, 2))
	}
	return t.String(), nil
}
