package core

import (
	"sort"

	"tmi3d/internal/circuits"
	"tmi3d/internal/flow"
	"tmi3d/internal/power"
	"tmi3d/internal/report"
	"tmi3d/internal/route"
	"tmi3d/internal/tech"
)

// Fig4Point is one (circuit, clock) point of the clock-period sweep.
type Fig4Point struct {
	Circuit string
	ClockNs float64 // paper-equivalent clock, ns
	Label   string  // slow / medium / fast
	Total   float64 // power reduction %, T-MI vs 2D (positive = reduction)
	Cell    float64
	Net     float64
	Leakage float64
}

// fig4Clocks are the paper's swept target periods (ns).
var fig4Clocks = map[string][3]float64{
	"AES":  {1.0, 0.8, 0.72},
	"M256": {2.6, 2.4, 2.0},
}

// Fig4 reproduces the power-reduction vs target-clock study: AES and M256 at
// 45nm across slow/medium/fast targets. Faster clocks squeeze the 2D design
// harder, so the T-MI benefit grows.
func (s *Study) Fig4() ([]Fig4Point, error) {
	labels := [3]string{"slow", "medium", "fast"}
	names := []string{"AES", "M256"}
	var cfgs []flow.Config
	for _, name := range names {
		for _, ns := range fig4Clocks[name] {
			for _, mode := range []tech.Mode{tech.Mode2D, tech.ModeTMI} {
				cfgs = append(cfgs, flow.Config{
					Circuit: name, Node: tech.N45, Mode: mode, ClockPs: ns * 1000,
				})
			}
		}
	}
	rs, err := s.RunAll(cfgs)
	if err != nil {
		return nil, err
	}
	var pts []Fig4Point
	for ni, name := range names {
		clocks := fig4Clocks[name]
		for i, ns := range clocks {
			pair := [2]*flow.Result{rs[ni*6+i*2], rs[ni*6+i*2+1]}
			pts = append(pts, Fig4Point{
				Circuit: name, ClockNs: ns, Label: labels[i],
				Total:   -pct(pair[0].Power.Total, pair[1].Power.Total),
				Cell:    -pct(pair[0].Power.Cell, pair[1].Power.Cell),
				Net:     -pct(pair[0].Power.Net, pair[1].Power.Net),
				Leakage: -pct(pair[0].Power.Leakage, pair[1].Power.Leakage),
			})
		}
	}
	return pts, nil
}

// RenderFig4 formats the Fig 4 series.
func (s *Study) RenderFig4() (string, error) {
	pts, err := s.Fig4()
	if err != nil {
		return "", err
	}
	t := report.New("Fig 4: power reduction (T-MI over 2D) vs target clock period",
		"circuit", "clock ns", "corner", "total", "cell", "net", "leakage")
	for _, p := range pts {
		t.Add(p.Circuit, report.F(p.ClockNs, 2), p.Label,
			report.F(p.Total, 1)+"%", report.F(p.Cell, 1)+"%",
			report.F(p.Net, 1)+"%", report.F(p.Leakage, 1)+"%")
	}
	return t.String(), nil
}

// Fig6Curve is the fanout→average-wirelength curve of one circuit.
type Fig6Curve struct {
	Circuit string
	Fanout  []int
	Length  []float64 // µm
}

// Fig6 extracts the measured fanout-vs-wirelength curves (the 2D wire load
// models of Section S2) from the routed 45nm designs.
func (s *Study) Fig6() ([]Fig6Curve, error) {
	cfgs := make([]flow.Config, len(circuits.Names))
	for i, name := range circuits.Names {
		cfgs[i] = flow.Config{Circuit: name, Node: tech.N45, Mode: tech.Mode2D}
	}
	rs, err := s.RunAll(cfgs)
	if err != nil {
		return nil, err
	}
	var curves []Fig6Curve
	for i, name := range circuits.Names {
		r := rs[i]
		var fanouts []int
		for f := range r.WLSamples {
			if f >= 1 {
				fanouts = append(fanouts, f)
			}
		}
		sort.Ints(fanouts)
		c := Fig6Curve{Circuit: name}
		for _, f := range fanouts {
			xs := r.WLSamples[f]
			if len(xs) == 0 {
				continue
			}
			sum := 0.0
			for _, x := range xs {
				sum += x
			}
			c.Fanout = append(c.Fanout, f)
			c.Length = append(c.Length, sum/float64(len(xs)))
		}
		curves = append(curves, c)
	}
	return curves, nil
}

// RenderFig6 formats the Fig 6 curves at a few representative fanouts.
func (s *Study) RenderFig6() (string, error) {
	curves, err := s.Fig6()
	if err != nil {
		return "", err
	}
	taps := []int{1, 2, 4, 8, 16}
	t := report.New("Fig 6: fanout vs average wirelength (µm), 2D designs",
		"circuit", "f=1", "f=2", "f=4", "f=8", "f=16")
	for _, c := range curves {
		row := []string{c.Circuit}
		for _, tap := range taps {
			val := ""
			for i, f := range c.Fanout {
				if f == tap {
					val = report.F(c.Length[i], 1)
				}
			}
			row = append(row, val)
		}
		t.AddRow(row)
	}
	return t.String(), nil
}

// Fig10Row is the per-layer-class wirelength usage of one routed design.
type Fig10Row struct {
	Circuit string
	Mode    tech.Mode
	// Percent of total wirelength per class: M1+local, intermediate, global.
	LocalPct, IntermediatePct, GlobalPct float64
}

// Fig10 reports metal layer usage for LDPC and M256 at 7nm.
func (s *Study) Fig10() ([]Fig10Row, error) {
	var cfgs []flow.Config
	for _, name := range []string{"LDPC", "M256"} {
		for _, mode := range []tech.Mode{tech.Mode2D, tech.ModeTMI} {
			cfgs = append(cfgs, flow.Config{Circuit: name, Node: tech.N7, Mode: mode})
		}
	}
	rs, err := s.RunAll(cfgs)
	if err != nil {
		return nil, err
	}
	var rows []Fig10Row
	for _, r := range rs {
		total := r.TotalWL
		if total == 0 {
			total = 1
		}
		local := r.WLByClass[tech.ClassM1] + r.WLByClass[tech.ClassLocal]
		rows = append(rows, Fig10Row{
			Circuit: r.Config.Circuit, Mode: r.Config.Mode,
			LocalPct:        100 * local / total,
			IntermediatePct: 100 * r.WLByClass[tech.ClassIntermediate] / total,
			GlobalPct:       100 * r.WLByClass[tech.ClassGlobal] / total,
		})
	}
	return rows, nil
}

// RenderFig10 formats the layer usage summary.
func (s *Study) RenderFig10() (string, error) {
	rows, err := s.Fig10()
	if err != nil {
		return "", err
	}
	t := report.New("Fig 10: wirelength by metal layer class (7nm)",
		"design", "local", "intermediate", "global")
	for _, r := range rows {
		t.Add(r.Circuit+"-"+modeShort(r.Mode),
			report.F(r.LocalPct, 1)+"%", report.F(r.IntermediatePct, 1)+"%", report.F(r.GlobalPct, 1)+"%")
	}
	return t.String(), nil
}

// Fig11Point is one switching-activity setting of the activity study.
type Fig11Point struct {
	Circuit   string
	Activity  float64 // sequential output activity factor
	Power2D   float64 // mW
	Power3D   float64
	Reduction float64 // %
}

// Fig11 sweeps the sequential-output switching activity factor and reports
// the T-MI power reduction, which the paper finds nearly activity-invariant.
func (s *Study) Fig11(circuitNames []string) ([]Fig11Point, error) {
	if len(circuitNames) == 0 {
		circuitNames = circuits.Names
	}
	activities := []float64{0.1, 0.2, 0.3, 0.4}
	var cfgs []flow.Config
	for _, name := range circuitNames {
		for _, a := range activities {
			for _, mode := range []tech.Mode{tech.Mode2D, tech.ModeTMI} {
				cfgs = append(cfgs, flow.Config{
					Circuit: name, Node: tech.N45, Mode: mode,
					Activities: power.Activities{PrimaryInput: 0.2, SeqOutput: a},
				})
			}
		}
	}
	rs, err := s.RunAll(cfgs)
	if err != nil {
		return nil, err
	}
	var pts []Fig11Point
	for ni, name := range circuitNames {
		for ai, a := range activities {
			pair := [2]*flow.Result{rs[ni*8+ai*2], rs[ni*8+ai*2+1]}
			pts = append(pts, Fig11Point{
				Circuit: name, Activity: a,
				Power2D: pair[0].Power.Total, Power3D: pair[1].Power.Total,
				Reduction: -pct(pair[0].Power.Total, pair[1].Power.Total),
			})
		}
	}
	return pts, nil
}

// RenderFig11 formats the activity sweep.
func (s *Study) RenderFig11(names []string) (string, error) {
	pts, err := s.Fig11(names)
	if err != nil {
		return "", err
	}
	t := report.New("Fig 11: power vs switching activity factor (45nm)",
		"circuit", "activity", "2D mW", "3D mW", "reduction")
	for _, p := range pts {
		t.Add(p.Circuit, report.F(p.Activity, 1), report.F(p.Power2D, 2),
			report.F(p.Power3D, 2), report.F(p.Reduction, 1)+"%")
	}
	return t.String(), nil
}

var _ = route.NumClasses
