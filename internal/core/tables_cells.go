package core

import (
	"tmi3d/internal/cellgen"
	"tmi3d/internal/extract"
	"tmi3d/internal/liberty"
	"tmi3d/internal/report"
	"tmi3d/internal/tech"
)

// Table1Row is one row of the cell-internal parasitic RC comparison.
type Table1Row struct {
	Cell           string
	R2D, R3D, R3Dc float64 // kΩ
	C2D, C3D, C3Dc float64 // fF
	Paper          [6]float64
}

// table1Paper holds the published values (R2D, R3D, R3Dc, C2D, C3D, C3Dc).
var table1Paper = map[string][6]float64{
	"INV":   {0.186, 0.107, 0.107, 0.363, 0.368, 0.349},
	"NAND2": {0.372, 0.237, 0.237, 0.561, 0.586, 0.547},
	"MUX2":  {1.133, 0.975, 0.975, 1.823, 1.938, 1.796},
	"DFF":   {2.876, 3.045, 3.045, 4.108, 5.101, 4.740},
}

// Table1 reproduces the cell internal parasitic RC study (Section 3.2).
func Table1() []Table1Row {
	var rows []Table1Row
	for _, base := range []string{"INV", "NAND2", "MUX2", "DFF"} {
		def, _ := cellgen.Template(base)
		l2 := cellgen.Generate2D(&def)
		l3 := cellgen.GenerateTMI(&def)
		e2 := extract.Extract(&def, l2, extract.Dielectric)
		e3 := extract.Extract(&def, l3, extract.Dielectric)
		e3c := extract.Extract(&def, l3, extract.Conductor)
		rows = append(rows, Table1Row{
			Cell: base,
			R2D:  e2.TotalR, R3D: e3.TotalR, R3Dc: e3c.TotalR,
			C2D: e2.TotalC, C3D: e3.TotalC, C3Dc: e3c.TotalC,
			Paper: table1Paper[base],
		})
	}
	return rows
}

// RenderTable1 formats Table 1 with the paper's values alongside.
func RenderTable1() string {
	t := report.New("Table 1: cell internal parasitic RC (paper values in parentheses)",
		"cell", "R2D kΩ", "R3D", "R3D-c", "C2D fF", "C3D", "C3D-c")
	for _, r := range Table1() {
		t.AddRow([]string{
			r.Cell,
			report.F(r.R2D, 3) + " (" + report.F(r.Paper[0], 3) + ")",
			report.F(r.R3D, 3) + " (" + report.F(r.Paper[1], 3) + ")",
			report.F(r.R3Dc, 3) + " (" + report.F(r.Paper[2], 3) + ")",
			report.F(r.C2D, 3) + " (" + report.F(r.Paper[3], 3) + ")",
			report.F(r.C3D, 3) + " (" + report.F(r.Paper[4], 3) + ")",
			report.F(r.C3Dc, 3) + " (" + report.F(r.Paper[5], 3) + ")",
		})
	}
	return t.String()
}

// Table2Row is one cell × corner of the delay/power comparison.
type Table2Row struct {
	Cell             string
	Corner           string  // fast / medium / slow
	Delay2D, Delay3D float64 // ps
	Power2D, Power3D float64 // fJ
	PaperDelay2D     float64
	PaperDelayRatio  float64 // paper's 3D/2D %
	PaperPower2D     float64
	PaperPowerRatio  float64
}

var table2Paper = map[string][3][4]float64{
	// per corner: {delay2D, delayRatio%, power2D, powerRatio%}
	"INV":   {{17.2, 98.3, 0.383, 91.6}, {51.1, 99.4, 0.362, 94.8}, {188.3, 99.8, 0.449, 96.0}},
	"NAND2": {{21.2, 98.6, 0.616, 94.6}, {56.2, 99.5, 0.604, 96.2}, {195.9, 99.8, 0.698, 96.7}},
	"MUX2":  {{59.8, 97.3, 2.113, 97.5}, {97.0, 98.2, 2.239, 96.8}, {215.1, 98.8, 2.555, 97.3}},
	"DFF":   {{108.8, 104.2, 6.341, 106.2}, {142.6, 103.1, 6.358, 106.3}, {237.4, 102.5, 7.303, 104.9}},
}

// Table2 reproduces the characterized cell delay/power comparison.
func Table2() ([]Table2Row, error) {
	l2, err := liberty.Default(tech.N45, tech.Mode2D)
	if err != nil {
		return nil, err
	}
	l3, err := liberty.Default(tech.N45, tech.ModeTMI)
	if err != nil {
		return nil, err
	}
	corners := []struct {
		name             string
		slew, slewDFF, c float64
	}{
		{"fast", 7.5, 5, 0.8},
		{"medium", 37.5, 28.1, 3.2},
		{"slow", 150, 112.5, 12.8},
	}
	var rows []Table2Row
	for _, base := range []string{"INV", "NAND2", "MUX2", "DFF"} {
		c2 := l2.MustCell(base + "_X1")
		c3 := l3.MustCell(base + "_X1")
		a2 := c2.WorstArc(c2.Outputs[0])
		a3 := c3.WorstArc(c3.Outputs[0])
		for ci, corner := range corners {
			slew := corner.slew
			if c2.Seq {
				slew = corner.slewDFF
			}
			p := table2Paper[base][ci]
			rows = append(rows, Table2Row{
				Cell: base, Corner: corner.name,
				Delay2D:      a2.Delay.At(slew, corner.c),
				Delay3D:      a3.Delay.At(slew, corner.c),
				Power2D:      a2.Energy.At(slew, corner.c),
				Power3D:      a3.Energy.At(slew, corner.c),
				PaperDelay2D: p[0], PaperDelayRatio: p[1],
				PaperPower2D: p[2], PaperPowerRatio: p[3],
			})
		}
	}
	return rows, nil
}

// RenderTable2 formats Table 2.
func RenderTable2() (string, error) {
	rows, err := Table2()
	if err != nil {
		return "", err
	}
	t := report.New("Table 2: cell delay and internal energy, 3D/2D ratios (paper ratios in parentheses)",
		"cell", "corner", "d2D ps", "d3D", "ratio", "e2D fJ", "e3D", "ratio")
	for _, r := range rows {
		t.AddRow([]string{
			r.Cell, r.Corner,
			report.F(r.Delay2D, 1), report.F(r.Delay3D, 1),
			report.F(100*r.Delay3D/r.Delay2D, 1) + "% (" + report.F(r.PaperDelayRatio, 1) + "%)",
			report.F(r.Power2D, 3), report.F(r.Power3D, 3),
			report.F(100*r.Power3D/r.Power2D, 1) + "% (" + report.F(r.PaperPowerRatio, 1) + "%)",
		})
	}
	return t.String(), nil
}

// Table3Row summarizes the metal stack (Table 3).
type Table3Row struct {
	Level                     string
	Layers2D, Layers3D        string
	Width, Spacing, Thickness float64 // nm
}

// Table3 returns the 45nm metal layer summary.
func Table3() []Table3Row {
	t2 := tech.New(tech.N45, tech.Mode2D)
	t3 := tech.New(tech.N45, tech.ModeTMI)
	classes := []struct {
		c    tech.LayerClass
		name string
	}{
		{tech.ClassGlobal, "global"},
		{tech.ClassIntermediate, "intermediate"},
		{tech.ClassLocal, "local"},
		{tech.ClassM1, "M1"},
	}
	var rows []Table3Row
	for _, cl := range classes {
		ls2 := t2.LayersOfClass(cl.c)
		ls3 := t3.LayersOfClass(cl.c)
		rows = append(rows, Table3Row{
			Level:     cl.name,
			Layers2D:  layerSpan(ls2),
			Layers3D:  layerSpan(ls3),
			Width:     ls2[0].Width * 1000,
			Spacing:   ls2[0].Spacing * 1000,
			Thickness: ls2[0].Thickness * 1000,
		})
	}
	return rows
}

func layerSpan(ls []tech.MetalLayer) string {
	if len(ls) == 0 {
		return "-"
	}
	if len(ls) == 1 {
		return ls[0].Name
	}
	return ls[0].Name + "-" + ls[len(ls)-1].Name
}

// RenderTable3 formats Table 3.
func RenderTable3() string {
	t := report.New("Table 3: metal layers (45nm)", "level", "2D", "3D", "width nm", "spacing", "thickness")
	for _, r := range Table3() {
		t.Add(r.Level, r.Layers2D, r.Layers3D, report.F(r.Width, 0), report.F(r.Spacing, 0), report.F(r.Thickness, 0))
	}
	return t.String()
}

// Table6 returns the node setup comparison rows.
func Table6() [2]tech.NodeSetup {
	return [2]tech.NodeSetup{tech.Setup(tech.N45), tech.Setup(tech.N7)}
}

// RenderTable6 formats Table 6.
func RenderTable6() string {
	t := report.New("Table 6: 45nm vs 7nm setup", "parameter", "45nm", "7nm")
	s := Table6()
	t.Add("transistor", s[0].Transistor, s[1].Transistor)
	t.Add("VDD (V)", s[0].VDD, s[1].VDD)
	t.Add("drawn length (nm)", s[0].TransistorLength*1000, s[1].TransistorLength*1000)
	t.Add("transistor width", s[0].TransistorWidth, s[1].TransistorWidth)
	t.Add("BEOL dielectric k", s[0].BEOLDielectricK, s[1].BEOLDielectricK)
	t.Add("M2 width (nm)", s[0].M2Width*1000, s[1].M2Width*1000)
	t.Add("MIV diameter (nm)", s[0].MIVDiameter*1000, s[1].MIVDiameter*1000)
	t.Add("ILD thickness (nm)", s[0].ILDThickness*1000, s[1].ILDThickness*1000)
	t.Add("cell height (µm)", s[0].CellHeight, s[1].CellHeight)
	return t.String()
}

// Table10 returns the ITRS projections.
func Table10() [2]tech.ITRSProjection {
	return [2]tech.ITRSProjection{tech.ITRS(tech.N45), tech.ITRS(tech.N7)}
}

// RenderTable10 formats Table 10.
func RenderTable10() string {
	t := report.New("Table 10: ITRS projection (high performance logic)", "parameter", "45nm", "7nm")
	p := Table10()
	t.Add("year", p[0].Year, p[1].Year)
	t.Add("device type", p[0].DeviceType, p[1].DeviceType)
	t.Add("NMOS drive (µA/µm)", p[0].NMOSDriveCurrent, p[1].NMOSDriveCurrent)
	t.Add("Cu eff. resistivity (µΩ·cm)", p[0].CuEffResistivity, p[1].CuEffResistivity)
	t.Add("Cu unit cap (fF/µm)", p[0].CuUnitCapacitance, p[1].CuUnitCapacitance)
	return t.String()
}

// Table11 reproduces the 7nm cell characterization via SPICE simulation of
// the scaled netlists (Section S3).
func Table11() ([]liberty.Table11Row, liberty.Scale7Factors, error) {
	return liberty.Characterize7Reference()
}

// RenderTable11 formats Table 11 plus the derived scaling factors.
func RenderTable11() (string, error) {
	rows, f, err := Table11()
	if err != nil {
		return "", err
	}
	t := report.New("Table 11: 7nm cell characterization (slew 19ps, load 3.2fF at 45nm-equivalent)",
		"cell", "cin45 fF", "cin7", "d45 ps", "d7", "slew45", "slew7", "e45 fJ", "e7", "leak45 pW", "leak7")
	for _, r := range rows {
		t.Add(r.Cell,
			report.F(r.InputCap45, 3), report.F(r.InputCap7, 3),
			report.F(r.Delay45, 1), report.F(r.Delay7, 1),
			report.F(r.OutSlew45, 1), report.F(r.OutSlew7, 1),
			report.F(r.CellPower45, 3), report.F(r.CellPower7, 3),
			report.F(r.Leakage45, 0), report.F(r.Leakage7, 0))
	}
	out := t.String()
	out += "measured scale factors: cap=" + report.F(f.InputCap, 3) +
		" delay=" + report.F(f.Delay, 3) + " slew=" + report.F(f.OutSlew, 3) +
		" energy=" + report.F(f.Energy, 3) + " leakage=" + report.F(f.Leakage, 3) + "\n"
	out += "paper scale factors:    cap=0.179 delay=0.471 slew=0.420 energy=0.084 leakage=0.678\n"
	return out, nil
}
