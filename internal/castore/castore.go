// Package castore is the repository's content-addressed entry store: one
// file per cache key, content-addressed by the SHA-256 of the key and sharded
// over 256 subdirectories so no single directory grows unboundedly. The
// serving layer's whole-flow result store and the staged engine's per-stage
// artifact store are both instances of it.
package castore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Store is a persistent key→payload store.
//
// Entry format — a one-line JSON header followed by the raw payload:
//
//	{"version":1,"key":"<full cache key>","sum":"<sha256 of payload>","len":N}\n
//	<payload bytes>
//
// The header carries the full (unhashed) key so a hash collision or a file
// copied to the wrong path reads as a mismatch, and the payload checksum so
// torn or bit-rotted entries are detected. Writes are atomic: the entry is
// written to a temp file in the destination directory, fsynced, and renamed
// into place, so a reader never observes a partial entry and a crash never
// leaves one behind under a final name.
//
// Loads are corruption-tolerant: any malformed entry — unparsable header,
// key mismatch, checksum mismatch, truncation — is quarantined (renamed into
// dir/quarantine/ for post-mortem) and reported as a miss, so one bad file
// costs one recompute, never an outage.
//
// A Store is safe for concurrent use by any number of goroutines and, thanks
// to the atomic rename protocol, by cooperating processes sharing the
// directory.
type Store struct {
	dir string
	// OnQuarantine, when set, observes every quarantined entry (metrics,
	// logging): path is where the bad entry now lives — normally under
	// quarantine/ — and reason is the verification failure. Called
	// synchronously from Get.
	OnQuarantine func(path string, reason error)
}

type storeHeader struct {
	Version int    `json:"version"`
	Key     string `json:"key"`
	Sum     string `json:"sum"`
	Len     int    `json:"len"`
}

const storeVersion = 1

// Open opens (creating if needed) a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("castore: store dir must be non-empty")
	}
	if err := os.MkdirAll(filepath.Join(dir, "quarantine"), 0o755); err != nil {
		return nil, fmt.Errorf("castore: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path returns (shard directory, entry path) for a key.
func (s *Store) path(key string) (string, string) {
	h := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(h[:])
	shard := filepath.Join(s.dir, name[:2])
	return shard, filepath.Join(shard, name+".entry")
}

// EntryPath returns the path an entry for key lives at (whether or not one
// exists) — exported for corruption tests and post-mortem tooling.
func (s *Store) EntryPath(key string) string {
	_, p := s.path(key)
	return p
}

// Put atomically writes the payload for a key. Re-putting a key overwrites
// its entry (the payload for a key is immutable in practice — flows are
// deterministic — so an overwrite stores identical bytes).
func (s *Store) Put(key string, payload []byte) error {
	shard, dst := s.path(key)
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("castore: put: %w", err)
	}
	sum := sha256.Sum256(payload)
	hdr, err := json.Marshal(storeHeader{
		Version: storeVersion,
		Key:     key,
		Sum:     hex.EncodeToString(sum[:]),
		Len:     len(payload),
	})
	if err != nil {
		return fmt.Errorf("castore: put: %w", err)
	}
	tmp, err := os.CreateTemp(shard, "tmp-*")
	if err != nil {
		return fmt.Errorf("castore: put: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(append(hdr, '\n')); err != nil {
		return fmt.Errorf("castore: put: %w", err)
	}
	if _, err := tmp.Write(payload); err != nil {
		return fmt.Errorf("castore: put: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("castore: put: %w", err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return fmt.Errorf("castore: put: %w", err)
	}
	tmp = nil
	if err := os.Rename(name, dst); err != nil {
		os.Remove(name)
		return fmt.Errorf("castore: put: %w", err)
	}
	return nil
}

// Get loads the payload for a key. A clean miss returns (nil, false, nil); a
// corrupted entry is quarantined and also reported as a miss — the caller
// recomputes and re-puts.
func (s *Store) Get(key string) ([]byte, bool, error) {
	_, p := s.path(key)
	data, err := os.ReadFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("castore: get: %w", err)
	}
	payload, err := s.verify(key, data)
	if err != nil {
		s.quarantine(p, err)
		return nil, false, nil
	}
	return payload, true, nil
}

// verify checks an entry's framing, key and checksum, returning the payload.
func (s *Store) verify(key string, data []byte) ([]byte, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, errors.New("no header line")
	}
	var hdr storeHeader
	if err := json.Unmarshal(data[:nl], &hdr); err != nil {
		return nil, fmt.Errorf("bad header: %w", err)
	}
	if hdr.Version != storeVersion {
		return nil, fmt.Errorf("unsupported version %d", hdr.Version)
	}
	if hdr.Key != key {
		return nil, fmt.Errorf("key mismatch: entry holds %q", hdr.Key)
	}
	payload := data[nl+1:]
	if len(payload) != hdr.Len {
		return nil, fmt.Errorf("truncated: %d of %d payload bytes", len(payload), hdr.Len)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != hdr.Sum {
		return nil, errors.New("payload checksum mismatch")
	}
	return payload, nil
}

// quarantine moves a bad entry aside so it stops shadowing recomputes but
// stays available for diagnosis. OnQuarantine receives the path the entry
// ended up at (inside quarantine/), so the report points at a file that
// exists.
func (s *Store) quarantine(path string, reason error) {
	dst := filepath.Join(s.dir, "quarantine", filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		if _, serr := os.Stat(path); serr != nil {
			// The source is gone: another goroutine quarantined it first and
			// already reported it.
			return
		}
		// The entry exists but cannot be moved (permissions, a cross-device
		// quarantine dir, ...). Removing it keeps the hot path clean, but the
		// post-mortem artifact is lost — report that rather than swallow it.
		os.Remove(path)
		dst = path
		reason = fmt.Errorf("%w (quarantine rename failed: %v; entry deleted)", reason, err)
	}
	if s.OnQuarantine != nil {
		s.OnQuarantine(dst, reason)
	}
}

// Len counts the live entries (excluding quarantine), mainly for tests and
// health reporting.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "quarantine" {
				return fs.SkipDir
			}
			return nil
		}
		if filepath.Ext(path) == ".entry" {
			n++
		}
		return nil
	})
	return n, err
}

// QuarantineLen counts quarantined entries.
func (s *Store) QuarantineLen() (int, error) {
	ents, err := os.ReadDir(filepath.Join(s.dir, "quarantine"))
	if err != nil {
		return 0, err
	}
	return len(ents), nil
}
