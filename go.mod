module tmi3d

go 1.22
