// Quickstart: run one iso-performance power comparison — the AES benchmark
// at 45nm, built both as a conventional 2D design and as a transistor-level
// monolithic 3D (T-MI) design, at the same target clock — and print the
// power benefit, reproducing one row of the paper's Table 4.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tmi3d/internal/flow"
	"tmi3d/internal/tech"
)

func main() {
	log.SetFlags(0)
	const scale = 0.3 // 30% of the paper's AES size: a few seconds of runtime

	fmt.Println("Building AES at 45nm, 2D vs transistor-level monolithic 3D...")
	var results [2]*flow.Result
	for i, mode := range []tech.Mode{tech.Mode2D, tech.ModeTMI} {
		r, err := flow.Run(flow.Config{
			Circuit: "AES",
			Scale:   scale,
			Node:    tech.N45,
			Mode:    mode,
		})
		if err != nil {
			log.Fatal(err)
		}
		results[i] = r
		fmt.Printf("\n%v design:\n", mode)
		fmt.Printf("  footprint   %8.0f µm²  (%.0f × %.0f µm)\n", r.Footprint, r.DieW, r.DieH)
		fmt.Printf("  cells       %8d      (%d buffers)\n", r.NumCells, r.NumBuffers)
		fmt.Printf("  wirelength  %8.3f m\n", r.TotalWL/1e6)
		fmt.Printf("  timing      %+8.0f ps slack at %.0f ps clock\n", r.WNS, r.ClockPs)
		fmt.Printf("  power       %8.3f mW  (cell %.3f + net %.3f + leakage %.3f)\n",
			r.Power.Total, r.Power.Cell, r.Power.Net, r.Power.Leakage)
	}

	d := flow.Diff(results[0], results[1])
	fmt.Printf("\nT-MI versus 2D at the same clock (iso-performance):\n")
	fmt.Printf("  footprint  %+.1f%%   (paper Table 4: -42.4%%)\n", d.Footprint)
	fmt.Printf("  wirelength %+.1f%%   (paper: -23.6%%)\n", d.WL)
	fmt.Printf("  total power %+.1f%%  (paper: -10.9%%)\n", d.Total)
}
