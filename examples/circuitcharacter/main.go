// Circuitcharacter reproduces the paper's Section 4.3 study: why does LDPC
// gain so much more from monolithic 3D than DES, even though the two designs
// have similar size and fanout? The answer is circuit character — LDPC's
// pseudo-random parity-check connections make long, wire-cap dominated nets,
// while DES's S-box clusters keep nets short and pin-cap dominated; shrinking
// the footprint only helps the wire part.
//
//	go run ./examples/circuitcharacter
package main

import (
	"fmt"
	"log"

	"tmi3d/internal/flow"
	"tmi3d/internal/tech"
)

func main() {
	log.SetFlags(0)
	const scale = 0.3

	type row struct {
		name string
		r2   *flow.Result
		r3   *flow.Result
	}
	var rows []row
	for _, name := range []string{"LDPC", "DES"} {
		var pair [2]*flow.Result
		for i, mode := range []tech.Mode{tech.Mode2D, tech.ModeTMI} {
			r, err := flow.Run(flow.Config{Circuit: name, Scale: scale, Node: tech.N45, Mode: mode})
			if err != nil {
				log.Fatal(err)
			}
			pair[i] = r
		}
		rows = append(rows, row{name, pair[0], pair[1]})
	}

	fmt.Println("Circuit character: LDPC vs DES at 45nm (Section 4.3 / Table 16)")
	fmt.Printf("\n%-22s %14s %14s\n", "", "LDPC", "DES")
	get := func(f func(*flow.Result) float64) [2][2]float64 {
		return [2][2]float64{
			{f(rows[0].r2), f(rows[0].r3)},
			{f(rows[1].r2), f(rows[1].r3)},
		}
	}
	prow := func(label string, v [2][2]float64, unit string) {
		fmt.Printf("%-22s %6.2f→%-6.2f %6.2f→%-6.2f %s\n",
			label, v[0][0], v[0][1], v[1][0], v[1][1], unit)
	}
	prow("wire cap (2D→3D)", get(func(r *flow.Result) float64 { return r.Power.WireCap }), "pF")
	prow("pin cap", get(func(r *flow.Result) float64 { return r.Power.PinCap }), "pF")
	prow("wire power", get(func(r *flow.Result) float64 { return r.Power.Wire }), "mW")
	prow("pin power", get(func(r *flow.Result) float64 { return r.Power.Pin }), "mW")
	prow("buffers (k)", get(func(r *flow.Result) float64 { return float64(r.NumBuffers) / 1000 }), "")
	prow("total power", get(func(r *flow.Result) float64 { return r.Power.Total }), "mW")

	for _, r := range rows {
		avg2 := r.r2.TotalWL / float64(r.r2.NumCells)
		red := (1 - r.r3.Power.Total/r.r2.Power.Total) * 100
		wireShare := r.r2.Power.Wire / r.r2.Power.Net * 100
		fmt.Printf("\n%s: avg wire %.1f µm/cell, wire share of net power %.0f%% → T-MI saves %.1f%%",
			r.name, avg2, wireShare, red)
	}
	fmt.Println()
	fmt.Println("\nWire-dominated LDPC converts its footprint shrink into large power")
	fmt.Println("savings; pin-dominated DES cannot — the paper's central finding.")
}
