// Clocksweep reproduces the paper's Fig 4 experiment: the power benefit of
// T-MI grows as the target clock gets faster, because the 2D design needs
// progressively more buffers and bigger cells to keep up with its longer
// wires. AES is swept across the paper's three target periods.
//
//	go run ./examples/clocksweep
package main

import (
	"fmt"
	"log"

	"tmi3d/internal/flow"
	"tmi3d/internal/tech"
)

func main() {
	log.SetFlags(0)
	const scale = 0.3

	fmt.Println("AES at 45nm: power reduction of T-MI over 2D vs target clock (Fig 4a)")
	fmt.Printf("%-8s %10s %12s %12s %12s %12s %14s\n",
		"corner", "clock ns", "2D power", "3D power", "reduction", "Δbuffers", "2D WNS ps")
	for _, pt := range []struct {
		label string
		ns    float64
	}{
		{"slow", 1.0}, {"medium", 0.8}, {"fast", 0.72},
	} {
		var pair [2]*flow.Result
		for i, mode := range []tech.Mode{tech.Mode2D, tech.ModeTMI} {
			r, err := flow.Run(flow.Config{
				Circuit: "AES", Scale: scale, Node: tech.N45, Mode: mode,
				ClockPs: pt.ns * 1000,
			})
			if err != nil {
				log.Fatal(err)
			}
			pair[i] = r
		}
		red := (1 - pair[1].Power.Total/pair[0].Power.Total) * 100
		dBuf := float64(pair[1].NumBuffers-pair[0].NumBuffers) / float64(pair[0].NumBuffers) * 100
		fmt.Printf("%-8s %10.2f %10.3f mW %9.3f mW %11.1f%% %11.1f%% %14.0f\n",
			pt.label, pt.ns, pair[0].Power.Total, pair[1].Power.Total, red, dBuf, pair[0].WNS)
	}
	fmt.Println("\nThe trend matches the paper: tighter clocks squeeze the 2D design")
	fmt.Println("harder than the T-MI design, so the power gap widens.")
}
