// Futurenode walks the paper's Section 5-6 projection: what happens to the
// monolithic-3D power benefit at the 7nm node, where ITRS projects devices
// that are dramatically better but copper that is 3.7× more resistive? It
// prints the node setup (Table 6), the unit wire parasitics that drive the
// story (Section 5), and a DES iso-performance comparison at both nodes,
// plus the pin-cap what-if of Table 8.
//
//	go run ./examples/futurenode
package main

import (
	"fmt"
	"log"

	"tmi3d/internal/captable"
	"tmi3d/internal/flow"
	"tmi3d/internal/tech"
)

func main() {
	log.SetFlags(0)
	const scale = 0.25

	fmt.Println("== The 7nm wires problem (Section 5) ==")
	for _, node := range []tech.Node{tech.N45, tech.N7} {
		tb := captable.Build(tech.New(node, tech.Mode2D), captable.Options{})
		m2, _ := tb.Lookup("M2")
		m8, _ := tb.Lookup("M8")
		fmt.Printf("%-5s  M2: %7.2f Ω/µm %6.3f fF/µm    M8: %6.3f Ω/µm %6.3f fF/µm\n",
			node, m2.R, m2.C, m8.R, m8.C)
	}
	fmt.Println("Local wires get ~180× more resistive while devices get faster —")
	fmt.Println("exactly the regime where shorter monolithic-3D wires should matter.")

	fmt.Println("\n== DES at both nodes, 2D vs T-MI (iso-performance) ==")
	for _, node := range []tech.Node{tech.N45, tech.N7} {
		var pair [2]*flow.Result
		for i, mode := range []tech.Mode{tech.Mode2D, tech.ModeTMI} {
			r, err := flow.Run(flow.Config{Circuit: "DES", Scale: scale, Node: node, Mode: mode})
			if err != nil {
				log.Fatal(err)
			}
			pair[i] = r
		}
		d := flow.Diff(pair[0], pair[1])
		fmt.Printf("%-5s  footprint %+6.1f%%  wirelength %+6.1f%%  power %+6.1f%%  (2D: %.3f mW)\n",
			node, d.Footprint, d.WL, d.Total, pair[0].Power.Total)
	}

	fmt.Println("\n== Table 8: does cheaper pin cap help T-MI at 7nm? ==")
	for _, pc := range []float64{1.0, 0.6} {
		var pair [2]*flow.Result
		for i, mode := range []tech.Mode{tech.Mode2D, tech.ModeTMI} {
			r, err := flow.Run(flow.Config{
				Circuit: "DES", Scale: scale, Node: tech.N7, Mode: mode, PinCapScale: pc,
			})
			if err != nil {
				log.Fatal(err)
			}
			pair[i] = r
		}
		red := (1 - pair[1].Power.Total/pair[0].Power.Total) * 100
		fmt.Printf("pin cap ×%.1f: 2D %.3f mW, T-MI %.3f mW → reduction %.1f%%\n",
			pc, pair[0].Power.Total, pair[1].Power.Total, red)
	}
	fmt.Println("\nSmaller pins shrink absolute power but NOT the T-MI margin — the")
	fmt.Println("paper's counterintuitive Table 8 finding: the benefit lives in the")
	fmt.Println("wires, and cheaper pins only dilute the share the wires represent.")
}
