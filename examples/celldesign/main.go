// Celldesign walks through the paper's Section 3 at the cell level: it takes
// standard cells, folds them into transistor-level monolithic 3D (PMOS on
// the bottom tier, NMOS on top, MIVs in between), extracts the internal
// parasitic RC under both top-silicon models, and prints the characterized
// delay/power next to the 2D originals — Tables 1 and 2, plus an ASCII
// rendering of the folded inverter (Fig 2).
//
//	go run ./examples/celldesign
package main

import (
	"fmt"
	"log"
	"strings"

	"tmi3d/internal/cellgen"
	"tmi3d/internal/extract"
	"tmi3d/internal/geom"
	"tmi3d/internal/liberty"
	"tmi3d/internal/tech"
)

func main() {
	log.SetFlags(0)

	fmt.Println("== Folding the inverter (Fig 2) ==")
	inv, _ := cellgen.Template("INV")
	l2 := cellgen.Generate2D(&inv)
	l3 := cellgen.GenerateTMI(&inv)
	fmt.Printf("2D cell:  %.2f × %.2f µm (%.3f µm²)\n", l2.Width, l2.Height, l2.Area())
	fmt.Printf("T-MI cell: %.2f × %.2f µm (%.3f µm²) — %.0f%% smaller, %d MIVs (%d direct S/D)\n\n",
		l3.Width, l3.Height, l3.Area(), 100*(1-l3.Area()/l2.Area()), l3.NumMIV, l3.DirectSD)

	fmt.Println("T-MI inverter, top tier (NMOS + M1):")
	fmt.Println(render(l3, false))
	fmt.Println("T-MI inverter, bottom tier (PMOS + MB1):")
	fmt.Println(render(l3, true))

	fmt.Println("== Extracted internal parasitics (Table 1) ==")
	fmt.Printf("%-7s %10s %10s %10s %10s %10s %10s\n", "cell", "R2D kΩ", "R3D", "R3D-c", "C2D fF", "C3D", "C3D-c")
	for _, base := range []string{"INV", "NAND2", "MUX2", "DFF"} {
		def, _ := cellgen.Template(base)
		d2 := cellgen.Generate2D(&def)
		d3 := cellgen.GenerateTMI(&def)
		e2 := extract.Extract(&def, d2, extract.Dielectric)
		e3 := extract.Extract(&def, d3, extract.Dielectric)
		e3c := extract.Extract(&def, d3, extract.Conductor)
		fmt.Printf("%-7s %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			base, e2.TotalR, e3.TotalR, e3c.TotalR, e2.TotalC, e3.TotalC, e3c.TotalC)
	}

	fmt.Println("\n== Characterized delay/energy at the medium corner (Table 2) ==")
	lib2 := liberty.MustDefault(tech.N45, tech.Mode2D)
	lib3 := liberty.MustDefault(tech.N45, tech.ModeTMI)
	fmt.Printf("%-7s %12s %12s %8s %12s %12s %8s\n", "cell", "delay2D ps", "delay3D", "ratio", "energy2D fJ", "energy3D", "ratio")
	for _, base := range []string{"INV", "NAND2", "MUX2", "DFF"} {
		c2 := lib2.MustCell(base + "_X1")
		c3 := lib3.MustCell(base + "_X1")
		slew := 37.5
		if c2.Seq {
			slew = 28.1
		}
		a2 := c2.WorstArc(c2.Outputs[0])
		a3 := c3.WorstArc(c3.Outputs[0])
		d2, d3 := a2.Delay.At(slew, 3.2), a3.Delay.At(slew, 3.2)
		e2, e3 := a2.Energy.At(slew, 3.2), a3.Energy.At(slew, 3.2)
		fmt.Printf("%-7s %12.1f %12.1f %7.1f%% %12.3f %12.3f %7.1f%%\n",
			base, d2, d3, 100*d3/d2, e2, e3, 100*e3/e2)
	}
	fmt.Println("\nThe paper's pattern reproduces: simple cells get slightly faster and")
	fmt.Println("cheaper after folding; the DFF pays a small penalty for its many")
	fmt.Println("internal tier crossings.")
}

// render draws one tier of a cell layout as ASCII art (x across, y up).
func render(l *cellgen.Layout, bottom bool) string {
	const cols, rows = 48, 14
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", cols))
	}
	plot := func(r geom.Rect, ch byte) {
		x0 := int(r.Lo.X / l.Width * float64(cols-1))
		x1 := int(r.Hi.X / l.Width * float64(cols-1))
		y0 := int(r.Lo.Y / l.Height * float64(rows-1))
		y1 := int(r.Hi.Y / l.Height * float64(rows-1))
		for y := y0; y <= y1 && y < rows; y++ {
			for x := x0; x <= x1 && x < cols; x++ {
				if y >= 0 && x >= 0 {
					grid[rows-1-y][x] = ch
				}
			}
		}
	}
	// Draw in visibility order: diffusion under metal under poly under MIVs.
	passes := []map[string]byte{
		{cellgen.LayerDiff: 'd', cellgen.LayerDiffB: 'd'},
		{cellgen.LayerM1: '=', cellgen.LayerMB1: '='},
		{cellgen.LayerPoly: 'P', cellgen.LayerPolyB: 'P'},
		{cellgen.LayerMIV: 'V', cellgen.LayerMIVD: 'V'},
	}
	for _, pass := range passes {
		for _, s := range l.Shapes {
			ch, ok := pass[s.Layer]
			if !ok {
				continue
			}
			isBottom := s.Layer == cellgen.LayerPolyB || s.Layer == cellgen.LayerDiffB || s.Layer == cellgen.LayerMB1
			isVia := s.Layer == cellgen.LayerMIV || s.Layer == cellgen.LayerMIVD
			if isBottom == bottom || isVia {
				plot(s.R, ch)
			}
		}
	}
	var b strings.Builder
	for _, row := range grid {
		b.WriteString("  ")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("  P=poly  d=diffusion  ==metal  V=MIV\n")
	return b.String()
}
