// Command loadgen drives a running tmi3d serve daemon with concurrent PPA
// queries and reports a latency histogram. It reuses the daemon's own config
// codec (serve.ConfigQuery), so the keys it requests are exactly the keys the
// daemon caches under.
//
// Key mix: a request is "hot" (the shared base config, cache-friendly) or
// "cold" (a unique seed, forcing a fresh flow) according to -cold. With
// -verify, every unique configuration's response is checked byte-for-byte
// against a direct in-process flow.Run — the serving layer must be invisible.
//
//	loadgen -addr 127.0.0.1:8080 -workers 64 -n 256 -scale 0.1 -verify
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"tmi3d/internal/flow"
	"tmi3d/internal/serve"
	"tmi3d/internal/tech"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "daemon address (host:port)")
	workers := flag.Int("workers", 8, "concurrent request workers")
	n := flag.Int("n", 64, "total requests to issue")
	circuit := flag.String("circuit", "AES", "benchmark circuit")
	nodeF := flag.String("node", "45", "process node: 45 or 7")
	modeF := flag.String("mode", "tmi", "design mode: 2d, tmi, tmim")
	scale := flag.Float64("scale", 0.1, "circuit scale")
	cold := flag.Float64("cold", 0, "fraction of requests with a unique seed (cold keys), 0..1")
	verify := flag.Bool("verify", false, "check responses byte-identical to direct flow.Run output")
	check := flag.Bool("check", false, "also probe /healthz and /metrics and assert they are sane")
	timeout := flag.Duration("timeout", 10*time.Minute, "per-request client timeout")
	flag.Parse()
	log.SetFlags(0)

	base := flow.Config{Circuit: strings.ToUpper(*circuit), Scale: *scale}
	if *nodeF == "7" {
		base.Node = tech.N7
	}
	switch strings.ToLower(*modeF) {
	case "tmi", "3d":
		base.Mode = tech.ModeTMI
	case "tmim", "3d+m":
		base.Mode = tech.ModeTMIM
	}
	if *cold < 0 || *cold > 1 {
		log.Fatal("-cold must be in [0,1]")
	}

	client := &http.Client{Timeout: *timeout}
	urlFor := func(cfg flow.Config) string {
		return "http://" + *addr + "/v1/ppa?" + serve.ConfigQuery(cfg).Encode()
	}

	// Deterministic request plan: round(cold*n) requests get a unique seed
	// (a cold key), spread evenly through the sequence; the rest share the
	// base config (the hot key).
	cfgs := make([]flow.Config, *n)
	for i := range cfgs {
		cfgs[i] = base
	}
	coldCount := int(math.Round(*cold * float64(*n)))
	for k := 0; k < coldCount; k++ {
		i := k * *n / coldCount
		cfgs[i].Seed = 1000 + uint64(i)
	}

	var (
		mu        sync.Mutex
		samples   []sample
		responses = map[string][]byte{} // key -> first body seen
		failures  int
	)
	work := make(chan int)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				cfg := cfgs[i]
				rt0 := time.Now()
				resp, err := client.Get(urlFor(cfg))
				if err != nil {
					mu.Lock()
					failures++
					mu.Unlock()
					log.Printf("request %d: %v", i, err)
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				sec := time.Since(rt0).Seconds()
				if rerr != nil || resp.StatusCode != 200 {
					mu.Lock()
					failures++
					mu.Unlock()
					log.Printf("request %d: status %d (%s)", i, resp.StatusCode, bytes.TrimSpace(body))
					continue
				}
				key := cfg.Key()
				mu.Lock()
				samples = append(samples, sample{sec, resp.Header.Get("X-Cache")})
				if prev, ok := responses[key]; ok {
					if !bytes.Equal(prev, body) {
						failures++
						log.Printf("request %d: response differs from earlier response for the same key", i)
					}
				} else {
					responses[key] = body
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < *n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(t0)

	report(samples, wall, failures, len(responses))

	if *verify {
		failures += verifyDirect(responses, cfgs)
	}
	if *check {
		failures += probe(client, *addr)
	}
	if failures > 0 {
		log.Fatalf("FAIL: %d failures", failures)
	}
	fmt.Println("OK")
}

// verifyDirect re-runs every unique configuration in-process and compares the
// canonical encoding against the daemon's bytes.
func verifyDirect(responses map[string][]byte, cfgs []flow.Config) int {
	unique := map[string]flow.Config{}
	for _, cfg := range cfgs {
		unique[cfg.Key()] = cfg
	}
	failures := 0
	for key, cfg := range unique {
		body, ok := responses[key]
		if !ok {
			continue // every request for this key failed; already counted
		}
		r, err := flow.Run(cfg)
		if err != nil {
			log.Printf("verify %s: direct run: %v", cfg.Circuit, err)
			failures++
			continue
		}
		want, err := serve.EncodeResult(r)
		if err != nil {
			log.Printf("verify: encode: %v", err)
			failures++
			continue
		}
		if !bytes.Equal(body, want) {
			log.Printf("verify: daemon bytes differ from direct flow.Run for key %s", key)
			failures++
		}
	}
	fmt.Printf("verify    : %d unique configs checked against direct flow.Run\n", len(unique))
	return failures
}

// probe asserts the observability endpoints respond and carry the expected
// series.
func probe(client *http.Client, addr string) int {
	failures := 0
	resp, err := client.Get("http://" + addr + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		log.Printf("healthz probe failed: %v", err)
		return failures + 1
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp, err = client.Get("http://" + addr + "/metrics")
	if err != nil || resp.StatusCode != 200 {
		log.Printf("metrics probe failed: %v", err)
		return failures + 1
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"tmi3d_requests_total", "tmi3d_request_seconds_count",
		"tmi3d_cache_misses_total", "tmi3d_queue_depth",
	} {
		if !strings.Contains(string(body), series) {
			log.Printf("metrics missing series %s", series)
			failures++
		}
	}
	fmt.Printf("probe     : healthz + metrics ok\n")
	return failures
}

type sample struct {
	sec   float64
	cache string
}

func report(samples []sample, wall time.Duration, failures, uniqueKeys int) {
	if len(samples) == 0 {
		fmt.Println("no successful requests")
		return
	}
	secs := make([]float64, len(samples))
	byCache := map[string]int{}
	for i, s := range samples {
		secs[i] = s.sec
		byCache[s.cache]++
	}
	sort.Float64s(secs)
	pct := func(p float64) float64 { return secs[int(p*float64(len(secs)-1))] }
	fmt.Printf("requests  : %d ok, %d failed, %d unique keys in %.2fs (%.1f/s)\n",
		len(samples), failures, uniqueKeys, wall.Seconds(), float64(len(samples))/wall.Seconds())
	var tiers []string
	for tier := range byCache {
		tiers = append(tiers, tier)
	}
	sort.Strings(tiers)
	for _, tier := range tiers {
		fmt.Printf("  source %-5s: %d\n", tier, byCache[tier])
	}
	fmt.Printf("latency   : p50 %s  p90 %s  p99 %s  max %s\n",
		fmtSec(pct(0.50)), fmtSec(pct(0.90)), fmtSec(pct(0.99)), fmtSec(secs[len(secs)-1]))
	// Log-spaced histogram from 100µs up.
	buckets := []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10, 30}
	counts := make([]int, len(buckets)+1)
	for _, s := range secs {
		i := sort.SearchFloat64s(buckets, s)
		counts[i]++
	}
	max := 1
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	for i, c := range counts {
		if c == 0 {
			continue
		}
		label := "   +Inf"
		if i < len(buckets) {
			label = fmtSec(buckets[i])
		}
		fmt.Printf("  <=%7s %6d %s\n", label, c, strings.Repeat("#", 1+c*40/max))
	}
}

func fmtSec(s float64) string {
	switch {
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}
