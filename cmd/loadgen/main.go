// Command loadgen drives a running tmi3d serve daemon with concurrent PPA
// queries and reports a latency histogram. It reuses the daemon's own config
// codec (serve.ConfigQuery), so the keys it requests are exactly the keys the
// daemon caches under.
//
// Key mix: a request is "hot" (the shared base config, cache-friendly) or
// "cold" (a unique seed, forcing a fresh flow) according to -cold. With
// -verify, every unique configuration's response is checked byte-for-byte
// against a direct in-process flow.Run — the serving layer must be invisible.
//
//	loadgen -addr 127.0.0.1:8080 -workers 64 -n 256 -scale 0.1 -verify
//
// With -sweep N the tool instead issues N sequential clock-sweep points of
// one configuration against a daemon running with -stagecache, then asserts
// from /metrics that synthesis and placement executed exactly once across the
// whole sweep — the staged engine's reuse contract, observed end to end.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tmi3d/internal/circuits"
	"tmi3d/internal/flow"
	"tmi3d/internal/serve"
	"tmi3d/internal/tech"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "daemon address (host:port)")
	workers := flag.Int("workers", 8, "concurrent request workers")
	n := flag.Int("n", 64, "total requests to issue")
	circuit := flag.String("circuit", "AES", "benchmark circuit")
	nodeF := flag.String("node", "45", "process node: 45 or 7")
	modeF := flag.String("mode", "tmi", "design mode: 2d, tmi, tmim")
	scale := flag.Float64("scale", 0.1, "circuit scale")
	cold := flag.Float64("cold", 0, "fraction of requests with a unique seed (cold keys), 0..1")
	verify := flag.Bool("verify", false, "check responses byte-identical to direct flow.Run output")
	check := flag.Bool("check", false, "also probe /healthz and /metrics and assert they are sane")
	sweep := flag.Int("sweep", 0, "clock-sweep mode: issue this many sequential sweep points and assert synth/place executed once (daemon must run with -stagecache; needs an otherwise idle daemon)")
	timeout := flag.Duration("timeout", 10*time.Minute, "per-request client timeout")
	flag.Parse()
	log.SetFlags(0)

	base := flow.Config{Circuit: strings.ToUpper(*circuit), Scale: *scale}
	if *nodeF == "7" {
		base.Node = tech.N7
	}
	switch strings.ToLower(*modeF) {
	case "tmi", "3d":
		base.Mode = tech.ModeTMI
	case "tmim", "3d+m":
		base.Mode = tech.ModeTMIM
	}
	if *cold < 0 || *cold > 1 {
		log.Fatal("-cold must be in [0,1]")
	}

	client := &http.Client{Timeout: *timeout}
	urlFor := func(cfg flow.Config) string {
		return "http://" + *addr + "/v1/ppa?" + serve.ConfigQuery(cfg).Encode()
	}

	if *sweep > 0 {
		if failures := sweepRun(client, *addr, urlFor, base, *sweep); failures > 0 {
			log.Fatalf("FAIL: %d failures", failures)
		}
		fmt.Println("OK")
		return
	}

	// Deterministic request plan: round(cold*n) requests get a unique seed
	// (a cold key), spread evenly through the sequence; the rest share the
	// base config (the hot key).
	cfgs := make([]flow.Config, *n)
	for i := range cfgs {
		cfgs[i] = base
	}
	coldCount := int(math.Round(*cold * float64(*n)))
	for k := 0; k < coldCount; k++ {
		i := k * *n / coldCount
		cfgs[i].Seed = 1000 + uint64(i)
	}

	var (
		mu        sync.Mutex
		samples   []sample
		responses = map[string][]byte{} // key -> first body seen
		failures  int
	)
	work := make(chan int)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				cfg := cfgs[i]
				rt0 := time.Now()
				resp, err := client.Get(urlFor(cfg))
				if err != nil {
					mu.Lock()
					failures++
					mu.Unlock()
					log.Printf("request %d: %v", i, err)
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				sec := time.Since(rt0).Seconds()
				if rerr != nil || resp.StatusCode != 200 {
					mu.Lock()
					failures++
					mu.Unlock()
					log.Printf("request %d: status %d (%s)", i, resp.StatusCode, bytes.TrimSpace(body))
					continue
				}
				key := cfg.Key()
				mu.Lock()
				samples = append(samples, sample{sec, resp.Header.Get("X-Cache")})
				if prev, ok := responses[key]; ok {
					if !bytes.Equal(prev, body) {
						failures++
						log.Printf("request %d: response differs from earlier response for the same key", i)
					}
				} else {
					responses[key] = body
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < *n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(t0)

	report(samples, wall, failures, len(responses))

	if *verify {
		failures += verifyDirect(responses, cfgs)
	}
	if *check {
		failures += probe(client, *addr)
	}
	if failures > 0 {
		log.Fatalf("FAIL: %d failures", failures)
	}
	fmt.Println("OK")
}

// sweepRun issues `points` sequential clock-sweep requests (a fresh seed makes
// every key cold, so the count below measures exactly this sweep) and asserts
// from the daemon's stage metrics that the upstream stages — wlm, synthesis,
// placement — executed once while the clock-dependent cone executed per point.
// Requests are deliberately sequential: concurrent points would be legal, but
// serializing makes "synth executed once" exact rather than probabilistic.
func sweepRun(client *http.Client, addr string, urlFor func(flow.Config) string, base flow.Config, points int) int {
	base.Seed = uint64(time.Now().UnixNano())
	clk, err := circuits.TargetClockPs(base.Circuit, base.Node)
	if err != nil {
		log.Printf("sweep: %v", err)
		return 1
	}
	before, found, err := stageExecutions(client, addr)
	if err != nil {
		log.Printf("sweep: scrape: %v", err)
		return 1
	}
	if !found {
		log.Printf("sweep: daemon exports no tmi3d_stage_executions_total — run `tmi3d serve` with -stagecache")
		return 1
	}
	failures := 0
	t0 := time.Now()
	for i := 0; i < points; i++ {
		cfg := base
		cfg.ClockPs = clk * (1.05 + 0.15*float64(i))
		resp, err := client.Get(urlFor(cfg))
		if err != nil {
			log.Printf("sweep point %d: %v", i, err)
			return failures + 1
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != 200 {
			log.Printf("sweep point %d: status %d (%s)", i, resp.StatusCode, bytes.TrimSpace(body))
			return failures + 1
		}
		fmt.Printf("sweep %d/%d: clock %.0f ps  X-Cache=%s  X-Stage-Hits=%q\n",
			i+1, points, cfg.ClockPs, resp.Header.Get("X-Cache"), resp.Header.Get("X-Stage-Hits"))
		if resp.Header.Get("X-Cache") != "run" {
			log.Printf("sweep point %d: X-Cache=%q, want \"run\" (is the daemon idle and the seed fresh?)", i, resp.Header.Get("X-Cache"))
			failures++
		}
		if resp.Header.Get("X-Stage-Hits") == "" {
			log.Printf("sweep point %d: no X-Stage-Hits header on an executed request", i)
			failures++
		}
	}
	after, _, err := stageExecutions(client, addr)
	if err != nil {
		log.Printf("sweep: scrape: %v", err)
		return failures + 1
	}
	once := []string{"wlm", "synth", "place"}
	per := []string{"opt", "route", "signoff", "power", "report"}
	for _, stage := range once {
		if d := after[stage] - before[stage]; d != 1 {
			log.Printf("sweep: stage %s executed %.0f times across %d points, want 1", stage, d, points)
			failures++
		}
	}
	for _, stage := range per {
		if d := after[stage] - before[stage]; d != float64(points) {
			log.Printf("sweep: stage %s executed %.0f times, want %d (every point)", stage, d, points)
			failures++
		}
	}
	fmt.Printf("sweep     : %d points in %.2fs; synth/place executed once, clock cone %d times\n",
		points, time.Since(t0).Seconds(), points)
	return failures
}

// stageExecutions scrapes tmi3d_stage_executions_total by stage. found
// reports whether the daemon exports the family at all (it only exists under
// -stagecache).
func stageExecutions(client *http.Client, addr string) (map[string]float64, bool, error) {
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, false, err
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil || resp.StatusCode != 200 {
		return nil, false, fmt.Errorf("metrics status %d", resp.StatusCode)
	}
	const family = "tmi3d_stage_executions_total"
	out := map[string]float64{}
	found := false
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "# TYPE "+family+" ") {
			found = true
		}
		rest, ok := strings.CutPrefix(line, family+`{stage="`)
		if !ok {
			continue
		}
		name, val, ok := strings.Cut(rest, `"} `)
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, found, fmt.Errorf("bad sample %q: %w", line, err)
		}
		out[name] = f
	}
	return out, found, nil
}

// verifyDirect re-runs every unique configuration in-process and compares the
// canonical encoding against the daemon's bytes.
func verifyDirect(responses map[string][]byte, cfgs []flow.Config) int {
	unique := map[string]flow.Config{}
	for _, cfg := range cfgs {
		unique[cfg.Key()] = cfg
	}
	failures := 0
	for key, cfg := range unique {
		body, ok := responses[key]
		if !ok {
			continue // every request for this key failed; already counted
		}
		r, err := flow.Run(cfg)
		if err != nil {
			log.Printf("verify %s: direct run: %v", cfg.Circuit, err)
			failures++
			continue
		}
		want, err := serve.EncodeResult(r)
		if err != nil {
			log.Printf("verify: encode: %v", err)
			failures++
			continue
		}
		if !bytes.Equal(body, want) {
			log.Printf("verify: daemon bytes differ from direct flow.Run for key %s", key)
			failures++
		}
	}
	fmt.Printf("verify    : %d unique configs checked against direct flow.Run\n", len(unique))
	return failures
}

// probe asserts the observability endpoints respond and carry the expected
// series.
func probe(client *http.Client, addr string) int {
	failures := 0
	resp, err := client.Get("http://" + addr + "/healthz")
	if err != nil {
		log.Printf("healthz probe failed: %v", err)
		return failures + 1
	}
	if resp.StatusCode != 200 {
		resp.Body.Close()
		log.Printf("healthz probe failed: status %d", resp.StatusCode)
		return failures + 1
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp, err = client.Get("http://" + addr + "/metrics")
	if err != nil {
		log.Printf("metrics probe failed: %v", err)
		return failures + 1
	}
	if resp.StatusCode != 200 {
		resp.Body.Close()
		log.Printf("metrics probe failed: status %d", resp.StatusCode)
		return failures + 1
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"tmi3d_requests_total", "tmi3d_request_seconds_count",
		"tmi3d_cache_misses_total", "tmi3d_queue_depth",
	} {
		if !strings.Contains(string(body), series) {
			log.Printf("metrics missing series %s", series)
			failures++
		}
	}
	fmt.Printf("probe     : healthz + metrics ok\n")
	return failures
}

type sample struct {
	sec   float64
	cache string
}

func report(samples []sample, wall time.Duration, failures, uniqueKeys int) {
	if len(samples) == 0 {
		fmt.Println("no successful requests")
		return
	}
	secs := make([]float64, len(samples))
	byCache := map[string]int{}
	for i, s := range samples {
		secs[i] = s.sec
		byCache[s.cache]++
	}
	sort.Float64s(secs)
	pct := func(p float64) float64 { return secs[int(p*float64(len(secs)-1))] }
	fmt.Printf("requests  : %d ok, %d failed, %d unique keys in %.2fs (%.1f/s)\n",
		len(samples), failures, uniqueKeys, wall.Seconds(), float64(len(samples))/wall.Seconds())
	var tiers []string
	for tier := range byCache {
		tiers = append(tiers, tier)
	}
	sort.Strings(tiers)
	for _, tier := range tiers {
		fmt.Printf("  source %-5s: %d\n", tier, byCache[tier])
	}
	fmt.Printf("latency   : p50 %s  p90 %s  p99 %s  max %s\n",
		fmtSec(pct(0.50)), fmtSec(pct(0.90)), fmtSec(pct(0.99)), fmtSec(secs[len(secs)-1]))
	// Log-spaced histogram from 100µs up.
	buckets := []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10, 30}
	counts := make([]int, len(buckets)+1)
	for _, s := range secs {
		i := sort.SearchFloat64s(buckets, s)
		counts[i]++
	}
	max := 1
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	for i, c := range counts {
		if c == 0 {
			continue
		}
		label := "   +Inf"
		if i < len(buckets) {
			label = fmtSec(buckets[i])
		}
		fmt.Printf("  <=%7s %6d %s\n", label, c, strings.Repeat("#", 1+c*40/max))
	}
}

func fmtSec(s float64) string {
	switch {
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}
