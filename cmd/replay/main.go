// Command replay re-analyzes a dumped implementation: it parses the Verilog
// netlist and DEF placement written by `tmi3d -dump`, re-routes, re-extracts
// and reruns sign-off timing and power — the ECO-analysis loop of a real
// flow, exercising the interchange readers end to end.
//
// Usage:
//
//	tmi3d -circuit AES -scale 0.3 -mode tmi -dump /tmp/aes
//	replay -v /tmp/aes.v -def /tmp/aes.def -mode tmi -clock 6000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"tmi3d/internal/captable"
	"tmi3d/internal/liberty"
	"tmi3d/internal/netlist"
	"tmi3d/internal/place"
	"tmi3d/internal/power"
	"tmi3d/internal/rcx"
	"tmi3d/internal/route"
	"tmi3d/internal/sta"
	"tmi3d/internal/tech"
)

func main() {
	vPath := flag.String("v", "", "Verilog netlist (from tmi3d -dump)")
	defPath := flag.String("def", "", "DEF placement (from tmi3d -dump)")
	modeF := flag.String("mode", "2d", "2d, tmi or tmim")
	nodeF := flag.String("node", "45", "45 or 7")
	clock := flag.Float64("clock", 0, "clock period in ps (calibrated)")
	util := flag.Float64("util", 0.8, "utilization for die reconstruction")
	showPath := flag.Bool("path", true, "print the critical path")
	flag.Parse()
	log.SetFlags(0)
	if *vPath == "" {
		log.Fatal("need -v netlist")
	}

	node := tech.N45
	if *nodeF == "7" {
		node = tech.N7
	}
	mode := tech.Mode2D
	switch strings.ToLower(*modeF) {
	case "tmi", "3d":
		mode = tech.ModeTMI
	case "tmim":
		mode = tech.ModeTMIM
	}
	lib, err := liberty.Default(node, mode)
	if err != nil {
		log.Fatal(err)
	}

	vf, err := os.Open(*vPath)
	if err != nil {
		log.Fatal(err)
	}
	defer vf.Close()
	d, err := netlist.ParseVerilog(vf, func(cell, pin string) bool {
		c := lib.Cell(cell)
		if c == nil {
			return pin == "Z" || pin == "Q" || pin == "CO" || (pin == "S" && !strings.HasPrefix(cell, "MUX2"))
		}
		for _, o := range c.Outputs {
			if o == pin {
				return true
			}
		}
		return false
	})
	if err != nil {
		log.Fatal(err)
	}
	if *clock > 0 {
		d.TargetClockPs = *clock
	} else if d.TargetClockPs == 0 {
		d.TargetClockPs = 5000
	}
	log.Printf("parsed %s: %d cells, %d nets", d.Name, len(d.Instances), len(d.Nets))

	tt := tech.New(node, mode)
	pl, err := place.Run(d, place.Options{Lib: lib, Tech: tt, TargetUtil: *util})
	if err != nil {
		log.Fatal(err)
	}
	if *defPath != "" {
		df, err := os.Open(*defPath)
		if err != nil {
			log.Fatal(err)
		}
		defer df.Close()
		if err := pl.ReadDEFLocations(df); err != nil {
			log.Fatal(err)
		}
		log.Printf("restored placement from %s", *defPath)
	}

	rt, err := route.Run(pl, route.Options{Tech: tt})
	if err != nil {
		log.Fatal(err)
	}
	tb := captable.Build(tt, captable.Options{})
	ex := rcx.Extract(rt, tb, tt)
	env := sta.Env{Lib: lib, Wire: ex.WireFunc()}
	res, err := sta.Analyze(d, env)
	if err != nil {
		log.Fatal(err)
	}
	pow, err := power.Analyze(d, power.Env{Lib: lib, Wire: ex.WireFunc(), Timing: res})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("replayed %s (%v %v): WL %.4f m, WNS %+.0f ps (hold %+.0f), power %.3f mW\n",
		d.Name, node, mode, rt.TotalLen/1e6, res.WNS, res.HoldWNS, pow.Total)
	if *showPath {
		fmt.Print(sta.FormatPath(sta.CriticalPath(d, env, res), res))
	}
}
