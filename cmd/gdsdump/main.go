// Command gdsdump writes the standard-cell library layouts as a binary GDSII
// stream plus the LEF abstracts — the physical-library artifacts of the
// paper's Section 2 flow (the Fig 5 cell layouts).
//
// Usage:
//
//	gdsdump -tmi -out tmi45        → tmi45.gds, tmi45.lef
package main

import (
	"flag"
	"log"
	"os"

	"tmi3d/internal/cellgen"
	"tmi3d/internal/gds"
)

func main() {
	tmi := flag.Bool("tmi", false, "write the folded T-MI library instead of 2D")
	out := flag.String("out", "cells45", "output file prefix")
	flag.Parse()
	log.SetFlags(0)

	name := "nangate45_like_2d"
	if *tmi {
		name = "tmi45_folded"
	}
	gf, err := os.Create(*out + ".gds")
	if err != nil {
		log.Fatal(err)
	}
	defer gf.Close()
	if err := gds.WriteCellLibrary(gf, name, *tmi); err != nil {
		log.Fatal(err)
	}
	lf, err := os.Create(*out + ".lef")
	if err != nil {
		log.Fatal(err)
	}
	defer lf.Close()
	if err := cellgen.WriteLEF(lf, *tmi); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s.gds and %s.lef (66 cells, %s)", *out, *out, name)
}
