// Command experiments regenerates every table and figure of the paper's
// evaluation and writes the combined report to stdout (and optionally a
// file). The scale flag trades fidelity for wall-clock time: 1.0 builds the
// paper's full-size benchmarks. The -j flag bounds the flow worker pool;
// the report is byte-identical at every -j for the same scale and seed
// (timestamps and timing go to stderr, never into the report).
//
// Usage:
//
//	experiments -scale 0.5 -j 8 -out EXPERIMENTS_DATA.txt
//	experiments -only table4,fig4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"tmi3d/internal/core"
	"tmi3d/internal/tech"
)

func main() {
	scale := flag.Float64("scale", 0.5, "circuit scale (1.0 = paper size)")
	out := flag.String("out", "", "also write the report to this file")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. table4,fig4); empty = all")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "max flows run in parallel (1 = serial driver)")
	seed := flag.Uint64("seed", 0, "study seed (flow RNG streams derive from seed + config)")
	flag.Parse()
	log.SetFlags(0)
	log.Printf("tmi3d experiments — scale %.2f, -j %d — %s", *scale, *jobs, time.Now().Format(time.RFC1123))

	s := core.NewStudy(*scale)
	s.Workers = *jobs
	s.Seed = *seed
	var b strings.Builder
	fmt.Fprintf(&b, "tmi3d experiment report — scale %.2f — seed %d\n\n", *scale, *seed)

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(strings.ToLower(id))
		if id != "" {
			want[id] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	type exp struct {
		id  string
		gen func() (string, error)
	}
	experiments := []exp{
		{"table1", func() (string, error) { return core.RenderTable1(), nil }},
		{"table2", core.RenderTable2},
		{"table3", func() (string, error) { return core.RenderTable3(), nil }},
		{"table4", func() (string, error) { return s.RenderSummary(tech.N45) }},
		{"table5", s.RenderTable5},
		{"table6", func() (string, error) { return core.RenderTable6(), nil }},
		{"table7", func() (string, error) { return s.RenderSummary(tech.N7) }},
		{"table8", s.RenderTable8},
		{"table9", s.RenderTable9},
		{"table10", func() (string, error) { return core.RenderTable10(), nil }},
		{"table11", core.RenderTable11},
		{"table12", s.RenderTable12},
		{"table13", func() (string, error) { return s.RenderDetail(tech.N45) }},
		{"table14", func() (string, error) { return s.RenderDetail(tech.N7) }},
		{"table15", s.RenderTable15},
		{"table16", s.RenderTable16},
		{"table17", s.RenderTable17},
		{"fig4", s.RenderFig4},
		{"fig6", s.RenderFig6},
		{"fig10", s.RenderFig10},
		{"fig11", func() (string, error) { return s.RenderFig11(nil) }},
	}
	wall := time.Now()
	for _, e := range experiments {
		if !sel(e.id) {
			continue
		}
		t0 := time.Now()
		text, err := e.gen()
		if err != nil {
			log.Fatalf("%s: %v", e.id, err)
		}
		log.Printf("%s done in %v", e.id, time.Since(t0).Round(time.Millisecond))
		b.WriteString(text)
		b.WriteString("\n")
	}
	// The timing profile goes to stderr: the report itself must stay
	// byte-identical across -j values and across runs.
	log.Printf("all experiments done in %v (%d flows executed)\n%s",
		time.Since(wall).Round(time.Millisecond), s.FlowsRun(), s.StageReport())

	fmt.Print(b.String())
	if *out != "" {
		if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}
}
