package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestCrossProcessByteIdentity is the end-to-end form of the byte-identity
// contract the internal/vet analyzers enforce statically: two separate
// processes running the same configuration must produce identical report
// bytes and identical netlist/placement artifacts. Go randomizes the map
// iteration seed per process, so any surviving map-order dependence — the
// netlist pin-order bug class — shows up here as a byte diff.
func TestCrossProcessByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and runs the flow twice")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "tmi3d")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	type artifacts struct {
		stdout, verilog, def []byte
	}
	run := func(tag string, extra ...string) artifacts {
		prefix := filepath.Join(dir, tag)
		args := append([]string{
			"-circuit", "FPU", "-scale", "0.1", "-mode", "tmi", "-byfunc",
			"-dump", prefix}, extra...)
		cmd := exec.Command(bin, args...)
		stdout, err := cmd.Output() // -dump's confirmation line goes to stderr
		if err != nil {
			t.Fatalf("%s run: %v", tag, err)
		}
		v, err := os.ReadFile(prefix + ".v")
		if err != nil {
			t.Fatalf("%s verilog: %v", tag, err)
		}
		def, err := os.ReadFile(prefix + ".def")
		if err != nil {
			t.Fatalf("%s def: %v", tag, err)
		}
		return artifacts{stdout: stdout, verilog: v, def: def}
	}

	// run1/run2 catch per-process nondeterminism (map iteration order);
	// serial/parallel pin the intra-flow worker contract: the worker count
	// must never reach the bytes of any artifact.
	a, b := run("run1"), run("run2")
	s1, s4 := run("serial", "-workers", "1"), run("parallel", "-workers", "4")
	for _, cmp := range []struct {
		what string
		x, y []byte
	}{
		{"report stdout", a.stdout, b.stdout},
		{"verilog artifact", a.verilog, b.verilog},
		{"DEF artifact", a.def, b.def},
		{"workers=1 vs workers=4 report stdout", s1.stdout, s4.stdout},
		{"workers=1 vs workers=4 verilog artifact", s1.verilog, s4.verilog},
		{"workers=1 vs workers=4 DEF artifact", s1.def, s4.def},
		{"default vs workers=1 report stdout", a.stdout, s1.stdout},
	} {
		if !bytes.Equal(cmp.x, cmp.y) {
			t.Errorf("%s differs between two processes of the same config (%d vs %d bytes):\n--- run1 ---\n%s\n--- run2 ---\n%s",
				cmp.what, len(cmp.x), len(cmp.y), firstDiffContext(cmp.x, cmp.y), firstDiffContext(cmp.y, cmp.x))
		}
	}
}

// firstDiffContext returns a short window around the first differing byte.
func firstDiffContext(a, b []byte) []byte {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo, hi := i-80, i+80
	if lo < 0 {
		lo = 0
	}
	if hi > len(a) {
		hi = len(a)
	}
	return a[lo:hi]
}

// TestAnchoredLoopRaceClean is the dynamic counterpart of the parsafe proof:
// parsafe statically verifies every //tmi3dvet:parloop anchored loop free of
// cross-iteration hazards, and this test runs each anchored package's
// worker-identity suite under the race detector so the proof is backed by an
// execution, not just a summary walk. A race here means either the
// effect-set analysis missed a write or the loops drifted after anchoring.
func TestAnchoredLoopRaceClean(t *testing.T) {
	if testing.Short() {
		t.Skip("recompiles the anchored packages instrumented for -race")
	}
	for _, pkg := range []struct {
		path string
		run  string // test filter; empty = full suite
	}{
		{"tmi3d/internal/place", ""},
		{"tmi3d/internal/sta", "WorkersMatchSerial"},
		{"tmi3d/internal/route", "RouteWorkersMatchSerial"},
		{"tmi3d/internal/spice", "ParallelStampMatchesSerial"},
		{"tmi3d/internal/opt", "WorkersMatchSerial"},
	} {
		args := []string{"test", "-race", "-count=1"}
		if pkg.run != "" {
			args = append(args, "-run", pkg.run)
		}
		args = append(args, pkg.path)
		cmd := exec.Command("go", args...)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("race-instrumented %s tests failed: %v\n%s", pkg.path, err, out)
		}
	}
}
