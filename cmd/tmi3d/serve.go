package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tmi3d/internal/serve"
)

// serveMain runs the PPA daemon: `tmi3d serve -addr :8080 -store ./store`.
// SIGINT/SIGTERM trigger a graceful drain — in-flight flows finish and land
// in the persistent store before the process exits.
func serveMain(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks an ephemeral port)")
	store := fs.String("store", "tmi3d-store", "persistent result store directory")
	stageDir := fs.String("stagecache", "", "staged-flow artifact store directory; jobs reuse per-stage artifacts across sweep points (empty = monolithic flow)")
	workers := fs.Int("workers", 0, "concurrent flow executions (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "admission queue depth before 429 (0 = 64)")
	lru := fs.Int("lru", 0, "in-memory cache entries (0 = 256)")
	timeout := fs.Duration("timeout", 0, "per-request deadline (0 = 15m)")
	maxScale := fs.Float64("max-scale", 1.0, "largest circuit scale the daemon will compute")
	addrFile := fs.String("addrfile", "", "write the bound address to this file once listening (for scripts using port 0)")
	drain := fs.Duration("drain", 30*time.Second, "how long shutdown waits for in-flight HTTP requests")
	fs.Parse(args)

	s, err := serve.NewServer(serve.Config{
		StoreDir:       *store,
		StageDir:       *stageDir,
		Workers:        *workers,
		QueueDepth:     *queue,
		LRUSize:        *lru,
		RequestTimeout: *timeout,
		MaxScale:       *maxScale,
		LogWriter:      os.Stderr,
	})
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(l.Addr().String()+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("tmi3d serve: listening on %s (store %s)", l.Addr(), *store)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()
	select {
	case sig := <-sigs:
		log.Printf("tmi3d serve: %v; draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			log.Printf("tmi3d serve: shutdown: %v", err)
		}
		<-done
	case err := <-done:
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintln(os.Stderr, "tmi3d serve: stopped")
}
