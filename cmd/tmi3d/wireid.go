package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"

	"tmi3d/internal/flow"
	"tmi3d/internal/liberty"
	"tmi3d/internal/stage"
)

// wireidMain is the wire-identity smoke gate: it runs one real flow through
// the staged engine, then replays every cached artifact's stored bytes
// through decode → re-encode and diffs them — the runtime check backing the
// wiresafe analyzer's static totality proof. It also round-trips the
// characterized library codec and a castore Put/Get on the report payload.
// Any divergence exits non-zero: `tmi3d wireid -circuit FPU -scale 0.1`.
func wireidMain(args []string) {
	fs := flag.NewFlagSet("wireid", flag.ExitOnError)
	circuit := fs.String("circuit", "FPU", "benchmark: FPU, AES, LDPC, DES, M256")
	nodeF := fs.String("node", "45", "process node: 45 or 7")
	modeF := fs.String("mode", "tmi", "design mode: 2d, tmi, tmim")
	scale := fs.Float64("scale", 0.1, "circuit scale (1.0 = paper size)")
	clock := fs.Float64("clock", 0, "target clock in ps (0 = Table 12)")
	stageDir := fs.String("stagecache", "", "artifact store directory (empty = a temporary one)")
	fs.Parse(args)

	dir := *stageDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "tmi3d-wireid-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	eng, err := stage.New(dir)
	if err != nil {
		log.Fatal(err)
	}
	cfg := flow.Config{
		Circuit: *circuit, Scale: *scale,
		Node: parseNode(*nodeF), Mode: parseMode(*modeF), ClockPs: *clock,
	}
	checks, err := eng.WireIdentity(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fail := false
	fmt.Printf("%-8s  %8s  %s\n", "artifact", "bytes", "verdict")
	for _, wc := range checks {
		verdict := "ok"
		if !wc.OK {
			verdict = "FAIL: " + wc.Detail
			fail = true
		}
		fmt.Printf("%-8s  %8d  %s\n", wc.Name, wc.Bytes, verdict)
	}

	// The library codec: the embedded-artifact regeneration contract.
	_, lib, err := cfg.Normalized().Library()
	if err != nil {
		log.Fatal(err)
	}
	b1, err := lib.EncodeJSON()
	if err != nil {
		log.Fatal(err)
	}
	verdict := "ok"
	if back, err := liberty.DecodeJSON(b1); err != nil {
		verdict, fail = "FAIL: "+err.Error(), true
	} else if b2, err := back.EncodeJSON(); err != nil {
		verdict, fail = "FAIL: "+err.Error(), true
	} else if !bytes.Equal(b1, b2) {
		verdict, fail = "FAIL: re-encode diverges", true
	}
	fmt.Printf("%-8s  %8d  %s\n", "library", len(b1), verdict)

	// The persistent tier itself: a Put/Get must hand back the exact bytes
	// (the store checksums payloads, so this also proves the entry format).
	verdict = "ok"
	if err := eng.Store().Put("wireid|probe", b1); err != nil {
		verdict, fail = "FAIL: "+err.Error(), true
	} else if back, ok, err := eng.Store().Get("wireid|probe"); err != nil || !ok {
		verdict, fail = fmt.Sprintf("FAIL: read back ok=%v err=%v", ok, err), true
	} else if !bytes.Equal(b1, back) {
		verdict, fail = "FAIL: store returned different bytes", true
	}
	fmt.Printf("%-8s  %8d  %s\n", "castore", len(b1), verdict)

	if fail {
		os.Exit(1)
	}
}
