// Command tmi3d runs the full design flow for one benchmark configuration
// and prints the layout and power report — the quickest way to see one
// iso-performance comparison point.
//
// Usage:
//
//	tmi3d -circuit AES -node 45 -mode tmi -scale 0.5
//	tmi3d -circuit LDPC -compare           # run 2D and T-MI, print the diff
//	tmi3d -stagecache ./cache -clock 900   # staged run: reuse unchanged stages
//	tmi3d stages -stagecache ./cache       # show the per-stage cache plan
//	tmi3d wireid -circuit FPU -scale 0.1   # replay every artifact codec, diff bytes
//	tmi3d lint -circuit AES -node 45       # design-integrity lint report
//	tmi3d equiv -circuit AES -node 45      # formal equivalence sign-off report
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"sync"

	"tmi3d/internal/flow"
	"tmi3d/internal/stage"
	"tmi3d/internal/tech"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "lint" {
		log.SetFlags(0)
		lintMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "equiv" {
		log.SetFlags(0)
		equivMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		log.SetFlags(0)
		serveMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "stages" {
		log.SetFlags(0)
		stagesMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "wireid" {
		log.SetFlags(0)
		wireidMain(os.Args[2:])
		return
	}
	circuit := flag.String("circuit", "AES", "benchmark: FPU, AES, LDPC, DES, M256")
	nodeF := flag.String("node", "45", "process node: 45 or 7")
	modeF := flag.String("mode", "2d", "design mode: 2d, tmi, tmim")
	scale := flag.Float64("scale", 0.5, "circuit scale (1.0 = paper size)")
	clock := flag.Float64("clock", 0, "target clock in ps (paper-equivalent; 0 = Table 12)")
	compare := flag.Bool("compare", false, "run both 2D and T-MI and print the comparison")
	dump := flag.String("dump", "", "write <prefix>.v and <prefix>.def implementation artifacts")
	byfunc := flag.Bool("byfunc", false, "print the per-function power breakdown table")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "max flows run in parallel (-compare runs 2D and T-MI concurrently when >1)")
	workers := flag.Int("workers", 0, "intra-flow worker budget for the parallel stage loops (0 = split cores across -j flows; results are byte-identical at any value)")
	stageDir := flag.String("stagecache", "", "staged-flow artifact store directory; reruns reuse unchanged stages (results byte-identical; empty = monolithic flow)")
	flag.Parse()
	log.SetFlags(0)

	if *stageDir != "" {
		eng, err := stage.New(*stageDir)
		if err != nil {
			log.Fatal(err)
		}
		runFlow = eng.Run
	}

	node := parseNode(*nodeF)
	mode := parseMode(*modeF)

	// Intra-flow budget: explicit, or the cores left per concurrent flow.
	intra := *workers
	if intra == 0 {
		concurrent := 1
		if *compare && *jobs > 1 {
			concurrent = 2
		}
		intra = runtime.GOMAXPROCS(0) / concurrent
		if intra < 1 {
			intra = 1
		}
	}

	if *compare {
		cfg2 := flow.Config{Circuit: *circuit, Scale: *scale, Node: node, Mode: tech.Mode2D, ClockPs: *clock, Workers: intra}
		cfg3 := flow.Config{Circuit: *circuit, Scale: *scale, Node: node, Mode: tech.ModeTMI, ClockPs: *clock, Workers: intra}
		var r2, r3 *flow.Result
		if *jobs > 1 {
			// Each flow's RNG derives from its config, so the concurrent
			// runs produce exactly what the serial runs would.
			var wg sync.WaitGroup
			wg.Add(1)
			go func() { defer wg.Done(); r2 = run(cfg2) }()
			r3 = run(cfg3)
			wg.Wait()
		} else {
			r2 = run(cfg2)
			r3 = run(cfg3)
		}
		print1(r2)
		if *byfunc {
			printByFunc(r2)
		}
		print1(r3)
		if *byfunc {
			printByFunc(r3)
		}
		d := flow.Diff(r2, r3)
		fmt.Printf("\nT-MI vs 2D: footprint %+.1f%%  wirelength %+.1f%%  total power %+.1f%%"+
			" (cell %+.1f%%, net %+.1f%%, leakage %+.1f%%)  buffers %+.1f%%\n",
			d.Footprint, d.WL, d.Total, d.Cell, d.Net, d.Leakage, d.Buffers)
		return
	}
	r := run(flow.Config{Circuit: *circuit, Scale: *scale, Node: node, Mode: mode, ClockPs: *clock, Workers: intra})
	print1(r)
	if *byfunc {
		printByFunc(r)
	}
	if *dump != "" {
		writeArtifacts(r, *dump)
	}
}

// printByFunc prints the deterministic per-function power table.
func printByFunc(r *flow.Result) {
	fmt.Printf("\n  power by cell function:\n")
	for _, line := range strings.Split(strings.TrimRight(r.Power.FunctionTable(), "\n"), "\n") {
		fmt.Printf("    %s\n", line)
	}
}

// writeArtifacts emits the final netlist and placement.
func writeArtifacts(r *flow.Result, prefix string) {
	vf, err := os.Create(prefix + ".v")
	if err != nil {
		log.Fatal(err)
	}
	defer vf.Close()
	if err := r.Design.WriteVerilog(vf); err != nil {
		log.Fatal(err)
	}
	df, err := os.Create(prefix + ".def")
	if err != nil {
		log.Fatal(err)
	}
	defer df.Close()
	if err := r.Placement.WriteDEF(df); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s.v and %s.def", prefix, prefix)
}

func parseNode(s string) tech.Node {
	if s == "7" || s == "7nm" {
		return tech.N7
	}
	return tech.N45
}

func parseMode(s string) tech.Mode {
	switch strings.ToLower(s) {
	case "tmi", "3d":
		return tech.ModeTMI
	case "tmim", "3d+m":
		return tech.ModeTMIM
	}
	return tech.Mode2D
}

// runFlow executes one flow; -stagecache swaps in a staged engine.
var runFlow = flow.Run

func run(cfg flow.Config) *flow.Result {
	r, err := runFlow(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func print1(r *flow.Result) {
	met := "MET"
	if r.WNS < 0 {
		met = "VIOLATED"
	}
	fmt.Printf("\n%s %v %v @ %.0f ps (calibrated)\n", r.Config.Circuit, r.Config.Node, r.Config.Mode, r.ClockPs)
	fmt.Printf("  footprint : %.0f µm² (%.1f × %.1f µm), utilization %.1f%%\n", r.Footprint, r.DieW, r.DieH, r.Util*100)
	fmt.Printf("  cells     : %d (%d buffers), cell area %.0f µm²\n", r.NumCells, r.NumBuffers, r.CellArea)
	fmt.Printf("  wirelength: %.4f m (local %.0f / intermediate %.0f / global %.0f µm)\n",
		r.TotalWL/1e6, r.WLByClass[tech.ClassM1]+r.WLByClass[tech.ClassLocal],
		r.WLByClass[tech.ClassIntermediate], r.WLByClass[tech.ClassGlobal])
	fmt.Printf("  timing    : WNS %+.0f ps (%s)\n", r.WNS, met)
	fmt.Printf("  power     : %.3f mW total = cell %.3f + net %.3f (wire %.3f + pin %.3f) + leakage %.3f\n",
		r.Power.Total, r.Power.Cell, r.Power.Net, r.Power.Wire, r.Power.Pin, r.Power.Leakage)
}
