package main

import (
	"flag"
	"fmt"
	"log"

	"tmi3d/internal/flow"
	"tmi3d/internal/stage"
)

// stagesMain prints the staged-flow cache plan for one configuration:
// `tmi3d stages -stagecache ./cache -circuit AES -mode tmi -clock 900`.
// For each DAG node it shows the tier the artifact would be served from right
// now (mem, disk, or a recompute), the artifact ID, and the config key fields
// that feed the ID — what a sweep point will reuse before paying for it.
func stagesMain(args []string) {
	fs := flag.NewFlagSet("stages", flag.ExitOnError)
	circuit := fs.String("circuit", "AES", "benchmark: FPU, AES, LDPC, DES, M256")
	nodeF := fs.String("node", "45", "process node: 45 or 7")
	modeF := fs.String("mode", "2d", "design mode: 2d, tmi, tmim")
	scale := fs.Float64("scale", 0.5, "circuit scale (1.0 = paper size)")
	clock := fs.Float64("clock", 0, "target clock in ps (0 = Table 12)")
	stageDir := fs.String("stagecache", "tmi3d-stagecache", "staged-flow artifact store directory")
	fs.Parse(args)

	eng, err := stage.New(*stageDir)
	if err != nil {
		log.Fatal(err)
	}
	cfg := flow.Config{
		Circuit: *circuit, Scale: *scale,
		Node: parseNode(*nodeF), Mode: parseMode(*modeF), ClockPs: *clock,
	}
	fmt.Printf("%-8s  %-7s  %-16s  %s\n", "stage", "tier", "artifact", "key")
	for _, pe := range eng.Plan(cfg) {
		tier, id := pe.Tier, pe.ID[:16]
		if !pe.Cached {
			tier, id = "-", "(uncached)"
		} else if tier == "" {
			tier = "compute"
		}
		key := pe.Key
		if key == "" {
			key = "(inherited from deps)"
		}
		fmt.Printf("%-8s  %-7s  %-16s  %s\n", pe.Name, tier, id, key)
	}
}
