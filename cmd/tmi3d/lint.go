// The lint subcommand runs the design-integrity engine standalone: it
// synthesizes a benchmark and lints the mapped netlist, optionally the cell
// libraries and folded layouts too, writing a structured report to stdout.
//
// Usage:
//
//	tmi3d lint -circuit AES -node 45               # JSON report, exit 0 if clean
//	tmi3d lint -all -format text                   # designs + libraries + layouts
//	tmi3d lint -circuit DES -corrupt multidrive,loop  # exit 1, names the rules
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"tmi3d/internal/cellgen"
	"tmi3d/internal/circuits"
	"tmi3d/internal/liberty"
	"tmi3d/internal/lint"
	"tmi3d/internal/netlist"
	"tmi3d/internal/synth"
	"tmi3d/internal/tech"
	"tmi3d/internal/wlm"
)

func lintMain(args []string) {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	circuit := fs.String("circuit", "AES", "benchmark to lint: FPU, AES, LDPC, DES, M256")
	nodeF := fs.String("node", "45", "process node: 45 or 7")
	scale := fs.Float64("scale", 0.25, "circuit scale (1.0 = paper size)")
	libs := fs.Bool("libs", false, "also lint both cell libraries at the node")
	cells := fs.Bool("cells", false, "also lint the 2D and folded T-MI cell layouts")
	all := fs.Bool("all", false, "lint every benchmark plus libraries and layouts")
	format := fs.String("format", "json", "report format: json or text")
	corrupt := fs.String("corrupt", "", "comma list of defects to inject post-synthesis: multidrive, loop, float, swapgate, dropinv")
	fs.Parse(args)

	node := tech.N45
	if *nodeF == "7" {
		node = tech.N7
	}

	var reports []*lint.Report
	names := []string{*circuit}
	if *all {
		names = circuits.Names
	}
	for _, name := range names {
		rep, err := lintCircuit(name, node, *scale, *corrupt)
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, rep)
	}
	if *libs || *all {
		for _, mode := range []tech.Mode{tech.Mode2D, tech.ModeTMI} {
			lib, err := liberty.Default(node, mode)
			if err != nil {
				log.Fatal(err)
			}
			reports = append(reports, lint.CheckLibrary(lib))
		}
	}
	if *cells || *all {
		for _, mode := range []tech.Mode{tech.Mode2D, tech.ModeTMI} {
			reports = append(reports, lint.CheckCells(mode))
		}
	}

	switch *format {
	case "text":
		for _, rep := range reports {
			if err := rep.WriteText(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
	default:
		data, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(data))
	}

	for _, rep := range reports {
		if !rep.Clean() {
			os.Exit(1)
		}
	}
}

// lintCircuit synthesizes one benchmark the way the flow does (relaxed clock:
// lint targets structure, not closure) and lints the mapped netlist.
func lintCircuit(name string, node tech.Node, scale float64, corrupt string) (*lint.Report, error) {
	lib, err := liberty.Default(node, tech.Mode2D)
	if err != nil {
		return nil, err
	}
	d, err := circuits.Generate(name, scale)
	if err != nil {
		return nil, err
	}
	clock, err := circuits.TargetClockPs(name, node)
	if err != nil {
		return nil, err
	}
	d.TargetClockPs = clock * 4
	area := 0.0
	for i := range d.Instances {
		if c := lib.Cell(d.Instances[i].Func + "_X1"); c != nil {
			area += c.Area
		}
	}
	model := wlm.BuildForMode(node, tech.Mode2D, area/circuits.TargetUtilization(name))
	res, err := synth.Run(d, synth.Options{Lib: lib, WLM: model})
	if err != nil {
		return nil, err
	}
	d = res.Design
	for _, kind := range strings.Split(corrupt, ",") {
		if kind = strings.TrimSpace(kind); kind != "" {
			if err := injectDefect(d, kind); err != nil {
				return nil, err
			}
		}
	}
	rep := lint.CheckDesign(d, lint.DesignOptions{Lib: lib})
	rep.Subject = fmt.Sprintf("design %s@%v", name, node)
	return rep, nil
}

// injectDefect deliberately corrupts a mapped netlist so the lint rules have
// something to catch — the acceptance check for the ERC engine.
func injectDefect(d *netlist.Design, kind string) error {
	switch kind {
	case "multidrive":
		// Rewire a second instance's output onto a net that already has a
		// driver: two template output pins on one net.
		first := -1
		var firstNet int
		for i := range d.Instances {
			pin, net, ok := outputPin(d, i)
			if !ok {
				continue
			}
			if first < 0 {
				first, firstNet = i, net
				_ = pin
				continue
			}
			d.Instances[i].Pins[pin] = firstNet
			return nil
		}
		return fmt.Errorf("corrupt multidrive: need two driving instances")
	case "loop":
		// Feed a combinational gate's own output back into one of its inputs.
		for i := range d.Instances {
			def, ok := cellgen.Template(d.Instances[i].Func)
			if !ok || def.Seq {
				continue
			}
			pin, net, ok := outputPin(d, i)
			if !ok || len(def.Inputs) == 0 {
				continue
			}
			_ = pin
			in := def.Inputs[0]
			old, exists := d.Instances[i].Pins[in]
			if !exists {
				continue
			}
			removeSink(&d.Nets[old], netlist.PinRef{Inst: i, Pin: in})
			d.Instances[i].Pins[in] = net
			d.Nets[net].Sinks = append(d.Nets[net].Sinks, netlist.PinRef{Inst: i, Pin: in})
			return nil
		}
		return fmt.Errorf("corrupt loop: no combinational instance found")
	case "float":
		// Point an instance input at a fresh net nothing drives.
		for i := range d.Instances {
			def, ok := cellgen.Template(d.Instances[i].Func)
			if !ok || len(def.Inputs) == 0 {
				continue
			}
			in := def.Inputs[0]
			old, exists := d.Instances[i].Pins[in]
			if !exists {
				continue
			}
			removeSink(&d.Nets[old], netlist.PinRef{Inst: i, Pin: in})
			ni := len(d.Nets)
			d.Nets = append(d.Nets, netlist.Net{
				Name:   "lint_float",
				Driver: netlist.PinRef{Inst: -2},
				Sinks:  []netlist.PinRef{{Inst: i, Pin: in}},
			})
			d.Instances[i].Pins[in] = ni
			return nil
		}
		return fmt.Errorf("corrupt float: no instance with inputs found")
	case "swapgate":
		// Swap every AND/OR-family gate for its dual (AND2↔OR2, NAND2↔NOR2).
		// Pin names and drive-strength sets are identical, so every ERC and
		// library rule still passes — only formal equivalence checking
		// catches it. All matching gates are swapped because any single gate
		// may sit in a dead cone or be masked at every compare point (a
		// single-gate swap of FPU@0.1 proves equivalent), which would make
		// the corruption a functional no-op.
		duals := map[string]string{"AND2": "OR2", "OR2": "AND2", "NAND2": "NOR2", "NOR2": "NAND2"}
		swapped := 0
		for i := range d.Instances {
			inst := &d.Instances[i]
			dual, ok := duals[inst.Func]
			if !ok {
				continue
			}
			if inst.CellName != "" {
				inst.CellName = dual + strings.TrimPrefix(inst.CellName, inst.Func)
			}
			inst.Func = dual
			swapped++
		}
		if swapped == 0 {
			return fmt.Errorf("corrupt swapgate: no two-input AND/OR-family gate found")
		}
		return nil
	case "dropinv":
		// Delete an inverter and reconnect its sinks to its input — the
		// netlist stays fully connected and ERC-clean (the dangling output
		// net is removed too), but the logic is complemented downstream.
		for i := range d.Instances {
			inst := &d.Instances[i]
			if inst.Func != "INV" {
				continue
			}
			an, zn := inst.Pins["A"], inst.Pins["Z"]
			onlyGates := true
			for _, s := range d.Nets[zn].Sinks {
				if s.Inst < 0 {
					onlyGates = false // keep PO rewiring out of the picture
					break
				}
			}
			if !onlyGates || len(d.Nets[zn].Sinks) == 0 {
				continue
			}
			for _, s := range append([]netlist.PinRef(nil), d.Nets[zn].Sinks...) {
				removeSink(&d.Nets[zn], s)
				d.Instances[s.Inst].Pins[s.Pin] = an
				d.Nets[an].Sinks = append(d.Nets[an].Sinks, s)
			}
			if err := d.RemoveInstance(i); err != nil {
				return err
			}
			return d.RemoveNet(zn)
		}
		return fmt.Errorf("corrupt dropinv: no droppable inverter found")
	}
	return fmt.Errorf("unknown corruption %q (want multidrive, loop, float, swapgate, dropinv)", kind)
}

// outputPin returns an instance's first template output pin and its net.
func outputPin(d *netlist.Design, i int) (string, int, bool) {
	def, ok := cellgen.Template(d.Instances[i].Func)
	if !ok {
		return "", 0, false
	}
	for _, out := range def.Outputs {
		if net, ok := d.Instances[i].Pins[out]; ok {
			return out, net, true
		}
	}
	return "", 0, false
}

func removeSink(n *netlist.Net, ref netlist.PinRef) {
	for k := range n.Sinks {
		if n.Sinks[k] == ref {
			n.Sinks = append(n.Sinks[:k], n.Sinks[k+1:]...)
			return
		}
	}
}
