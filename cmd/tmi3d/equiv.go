// The equiv subcommand runs the formal equivalence checker standalone: it
// synthesizes a benchmark and proves the mapped netlist equivalent to the
// generated source (the Conformal/Formality sign-off of the paper's Fig 1
// flow), optionally after injecting a logic-corrupting defect to demonstrate
// detection, plus a switch-level verification of the folded T-MI library.
//
// Usage:
//
//	tmi3d equiv -circuit AES -node 45              # JSON report, exit 0 if proven
//	tmi3d equiv -all -format text                  # every benchmark + library
//	tmi3d equiv -circuit DES -corrupt swapgate     # exit 1 with counterexample
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"tmi3d/internal/circuits"
	"tmi3d/internal/equiv"
	"tmi3d/internal/liberty"
	"tmi3d/internal/synth"
	"tmi3d/internal/tech"
	"tmi3d/internal/wlm"
)

// equivOutput is the JSON shape of one `tmi3d equiv` invocation.
type equivOutput struct {
	Designs []*equiv.Report  `json:"designs"`
	Library *equiv.LibReport `json:"library,omitempty"`
}

func equivMain(args []string) {
	fs := flag.NewFlagSet("equiv", flag.ExitOnError)
	circuit := fs.String("circuit", "AES", "benchmark to check: FPU, AES, LDPC, DES, M256")
	nodeF := fs.String("node", "45", "process node: 45 or 7")
	scale := fs.Float64("scale", 0.25, "circuit scale (1.0 = paper size)")
	lib := fs.Bool("lib", false, "also switch-level-verify the folded cell library")
	all := fs.Bool("all", false, "check every benchmark plus the library")
	format := fs.String("format", "json", "report format: json or text")
	corrupt := fs.String("corrupt", "", "comma list of defects to inject into the compared netlist: "+
		"swapgate, dropinv, multidrive, loop, float")
	fs.Parse(args)

	node := tech.N45
	if *nodeF == "7" {
		node = tech.N7
	}

	out := equivOutput{}
	names := []string{*circuit}
	if *all {
		names = circuits.Names
	}
	for _, name := range names {
		rep, err := equivCircuit(name, node, *scale, *corrupt)
		if err != nil {
			log.Fatal(err)
		}
		out.Designs = append(out.Designs, rep)
	}
	if *lib || *all {
		out.Library = equiv.CheckLibrary()
	}

	switch *format {
	case "text":
		for _, rep := range out.Designs {
			rep.WriteText(os.Stdout)
		}
		if out.Library != nil {
			out.Library.WriteText(os.Stdout)
		}
	default:
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(data))
	}

	for _, rep := range out.Designs {
		if !rep.Equivalent() {
			os.Exit(1)
		}
	}
	if out.Library != nil && out.Library.Err() != nil {
		os.Exit(1)
	}
}

// equivCircuit synthesizes one benchmark the way the flow does (relaxed
// clock: equivalence is about logic, not closure) and checks the mapped
// netlist against the generated source. With corruptions, the corrupted
// post-synthesis netlist is checked against the intact one instead — the
// counterexample then names the injected defect's first diverging net.
func equivCircuit(name string, node tech.Node, scale float64, corrupt string) (*equiv.Report, error) {
	lib, err := liberty.Default(node, tech.Mode2D)
	if err != nil {
		return nil, err
	}
	src, err := circuits.Generate(name, scale)
	if err != nil {
		return nil, err
	}
	clock, err := circuits.TargetClockPs(name, node)
	if err != nil {
		return nil, err
	}
	src.TargetClockPs = clock * 4
	area := 0.0
	for i := range src.Instances {
		if c := lib.Cell(src.Instances[i].Func + "_X1"); c != nil {
			area += c.Area
		}
	}
	model := wlm.BuildForMode(node, tech.Mode2D, area/circuits.TargetUtilization(name))
	res, err := synth.Run(src, synth.Options{Lib: lib, WLM: model})
	if err != nil {
		return nil, err
	}

	ref, dut := src, res.Design
	var injected []string
	for _, kind := range strings.Split(corrupt, ",") {
		if kind = strings.TrimSpace(kind); kind == "" {
			continue
		}
		if injected == nil {
			ref = res.Design
			dut = res.Design.Clone()
			dut.Name = name + "_corrupt"
		}
		if err := injectDefect(dut, kind); err != nil {
			return nil, err
		}
		injected = append(injected, kind)
	}
	if injected != nil {
		// The corruptions are designed to pass every structural ERC rule —
		// verify that here so equiv is provably the only net catching them.
		if err := dut.Validate(); err != nil {
			return nil, fmt.Errorf("corruption %v broke netlist structure: %w",
				injected, err)
		}
	}

	rep, err := equiv.Check(ref, dut, equiv.Options{})
	if err != nil {
		return nil, err
	}
	rep.Subject = fmt.Sprintf("design %s@%v", name, node)
	if injected != nil {
		rep.Subject += fmt.Sprintf(" (corrupt: %s)", strings.Join(injected, ","))
	}
	return rep, nil
}
