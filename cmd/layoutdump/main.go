// Command layoutdump renders a placed-and-routed benchmark as images: cell
// placement density and routing congestion heat maps — the Fig 3 / Fig 8
// snapshots of the paper. Output is PPM (viewable anywhere) plus an ASCII
// thumbnail on stdout.
//
// Usage:
//
//	layoutdump -circuit LDPC -mode 2d -scale 0.5 -out ldpc
//	  → ldpc_place.ppm, ldpc_congestion.ppm
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"tmi3d/internal/circuits"
	"tmi3d/internal/liberty"
	"tmi3d/internal/place"
	"tmi3d/internal/route"
	"tmi3d/internal/synth"
	"tmi3d/internal/tech"
	"tmi3d/internal/wlm"
)

func main() {
	circuit := flag.String("circuit", "LDPC", "benchmark name")
	modeF := flag.String("mode", "2d", "2d or tmi")
	scale := flag.Float64("scale", 0.3, "circuit scale")
	out := flag.String("out", "layout", "output file prefix")
	flag.Parse()
	log.SetFlags(0)

	mode := tech.Mode2D
	if strings.EqualFold(*modeF, "tmi") || strings.EqualFold(*modeF, "3d") {
		mode = tech.ModeTMI
	}
	lib, err := liberty.Default(tech.N45, mode)
	if err != nil {
		log.Fatal(err)
	}
	d, err := circuits.Generate(*circuit, *scale)
	if err != nil {
		log.Fatal(err)
	}
	tt := tech.New(tech.N45, mode)
	sr, err := synth.Run(d, synth.Options{Lib: lib, WLM: wlm.BuildForMode(tech.N45, mode, 30000)})
	if err != nil {
		log.Fatal(err)
	}
	pl, err := place.Run(sr.Design, place.Options{
		Lib: lib, Tech: tt, TargetUtil: circuits.TargetUtilization(*circuit),
	})
	if err != nil {
		log.Fatal(err)
	}
	rt, err := route.Run(pl, route.Options{Tech: tt})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s %v: die %.0f × %.0f µm, WL %.3f m, overflow %d, peak congestion %.2f\n",
		*circuit, mode, pl.Die.W(), pl.Die.H(), rt.TotalLen/1e6, rt.Overflow, rt.MaxCongestion)

	// Placement density grid.
	const px = 192
	py := int(float64(px) * pl.Die.H() / pl.Die.W())
	density := make([]float64, px*py)
	for i := range pl.X {
		x := int(pl.X[i] / pl.Die.W() * float64(px-1))
		y := int(pl.Y[i] / pl.Die.H() * float64(py-1))
		if x >= 0 && x < px && y >= 0 && y < py {
			c := lib.MustCell(sr.Design.Instances[i].CellName)
			density[y*px+x] += c.Area
		}
	}
	writeHeat(*out+"_place.ppm", density, px, py)

	// Congestion from wirelength per gcell, projected onto the same grid.
	cong := make([]float64, px*py)
	for ni, nr := range rt.Routes {
		if nr.Len == 0 {
			continue
		}
		// Smear each net's length over its bounding box.
		hp := pl.NetHPWL(ni)
		_ = hp
		pt := pl.PinPoint(sr.Design.Nets[ni].Driver)
		x := int(pt.X / pl.Die.W() * float64(px-1))
		y := int(pt.Y / pl.Die.H() * float64(py-1))
		if x >= 0 && x < px && y >= 0 && y < py {
			cong[y*px+x] += nr.Len
		}
	}
	writeHeat(*out+"_congestion.ppm", cong, px, py)

	fmt.Println("\nplacement density:")
	ascii(density, px, py)
	log.Printf("wrote %s_place.ppm and %s_congestion.ppm", *out, *out)
}

// writeHeat dumps a scalar field as a colored PPM.
func writeHeat(path string, v []float64, w, h int) {
	max := 0.0
	for _, x := range v {
		if x > max {
			max = x
		}
	}
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "P3\n%d %d\n255\n", w, h)
	for y := h - 1; y >= 0; y-- {
		for x := 0; x < w; x++ {
			t := v[y*w+x] / max
			r := int(255 * t)
			g := int(255 * (1 - t) * t * 4 * 0.6)
			bl := int(255 * (1 - t) * 0.7)
			fmt.Fprintf(&b, "%d %d %d ", r, g, bl)
		}
		b.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		log.Fatal(err)
	}
}

// ascii prints a coarse thumbnail.
func ascii(v []float64, w, h int) {
	const tw, th = 64, 24
	ramp := " .:-=+*#%@"
	max := 0.0
	cell := make([]float64, tw*th)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			cx := x * tw / w
			cy := y * th / h
			cell[cy*tw+cx] += v[y*w+x]
		}
	}
	for _, x := range cell {
		if x > max {
			max = x
		}
	}
	if max == 0 {
		max = 1
	}
	for y := th - 1; y >= 0; y-- {
		row := make([]byte, tw)
		for x := 0; x < tw; x++ {
			k := int(cell[y*tw+x] / max * float64(len(ramp)-1))
			row[x] = ramp[k]
		}
		fmt.Printf("  %s\n", row)
	}
}
