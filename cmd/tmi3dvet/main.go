// Command tmi3dvet is the repository's determinism and concurrency
// multichecker: it loads and type-checks every package in the module and runs
// the internal/vet analyzer suite (ctxdisc, globalmut, godisc, keycoverage,
// lockorder, maporder, parsafe, seedpurity, stagedeps, wiresafe). A non-empty
// report exits 1, which is what scripts/check.sh gates CI on.
//
// Usage:
//
//	tmi3dvet ./...            # analyze the whole module (the only scope)
//	tmi3dvet -list            # print the analyzers and what they catch
//	tmi3dvet -c maporder ./...# run a single analyzer
//	tmi3dvet -counts ./...    # append per-analyzer diagnostic counts
//	tmi3dvet -json ./...      # machine-readable diagnostics + manifests
//	tmi3dvet -pkg route ./... # only packages whose import path contains "route"
//	tmi3dvet -anchor sta.loads ./...  # re-analyze one anchored parloop
//
// -json emits one JSON object carrying every diagnostic (file/line/col/
// analyzer/message), the per-stage read-set manifest stagedeps computed from
// the anchored pipeline — the measured dependency surface the incremental
// flow cache consumes — and the per-loop effect sets parsafe computed from
// the //tmi3dvet:parloop anchors, the parallelism green board of ROADMAP
// item 3, and the per-type wire facts wiresafe proved over the flow.WireTypes
// manifest (codec kind, round-tripping fields, audited off-wire fields). The
// exit status is unchanged: 1 on any diagnostic, 0 on a clean module.
//
// -pkg and -anchor narrow a run for fast iteration on one package or loop.
// Module-wide reconciliation (the ParLoops manifest diff) is skipped under
// either filter, so a filtered run can pass while the full run still fails —
// CI always runs unfiltered.
//
// Directive syntax, for sites the analyzers cannot prove safe on their own:
//
//	//tmi3dvet:ordered <reason>   on or above a map range (maporder)
//	//tmi3dvet:nonkey <reason>    on a Config field (keycoverage)
//	//tmi3dvet:nonseed <reason>   on a Config field excluded from DeriveSeed
//	//tmi3dvet:global <reason>    on or above a mutable global access (globalmut)
//	//tmi3dvet:stage <name>       above a pipeline stage's first statement (stagedeps)
//	//tmi3dvet:parloop <name>     above a hot loop tracked by flow.ParLoops (parsafe)
//	//tmi3dvet:parhazard <reason> on a hazard line, or above the for statement
//	                              to cover the whole loop (parsafe)
//	//tmi3dvet:godisc <reason>    on or above a goroutine-discipline finding
//	//tmi3dvet:nonwire <reason>   on a wire-type field audited off the wire (wiresafe)
//	//tmi3dvet:finite <reason>    on a raw float field of a non-finite type's
//	                              wire struct that provably stays finite (wiresafe)
//	//tmi3dvet:ctxdisc <reason>   on or above a cancellation/resource finding
//
// The reason string is mandatory and stale suppressions are diagnostics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"tmi3d/internal/vet"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	check := flag.String("c", "", "run only the named analyzer")
	root := flag.String("C", "", "module root (default: ascend from the working directory to go.mod)")
	asJSON := flag.Bool("json", false, "emit diagnostics and the stage/parloop manifests as JSON")
	counts := flag.Bool("counts", false, "print per-analyzer diagnostic counts after the report")
	pkgFilter := flag.String("pkg", "", "only analyze packages whose import path contains this substring (skips manifest reconciliation)")
	anchor := flag.String("anchor", "", "only analyze the named //tmi3dvet:parloop anchor (skips manifest reconciliation)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tmi3dvet [-list] [-c analyzer] [-C moduleroot] [-json] [-counts] [-pkg substr] [-anchor name] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		names := append([]*vet.Analyzer(nil), vet.All...)
		sort.Slice(names, func(i, j int) bool { return names[i].Name < names[j].Name })
		for _, a := range names {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := vet.All
	if *check != "" {
		analyzers = nil
		for _, a := range vet.All {
			if a.Name == *check {
				analyzers = []*vet.Analyzer{a}
			}
		}
		if analyzers == nil {
			fmt.Fprintf(os.Stderr, "tmi3dvet: unknown analyzer %q\n", *check)
			os.Exit(2)
		}
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tmi3dvet: %v\n", err)
			os.Exit(2)
		}
	}

	mod, err := vet.Load(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmi3dvet: %v\n", err)
		os.Exit(2)
	}
	res := vet.AnalyzeOpts(mod, vet.Options{Analyzers: analyzers, PkgFilter: *pkgFilter, Anchor: *anchor})

	if *asJSON {
		emitJSON(res)
	} else {
		for _, d := range res.Diags {
			fmt.Println(d)
		}
	}
	if *counts {
		printCounts(analyzers, res.Diags)
	}
	if len(res.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "tmi3dvet: %d diagnostic(s) across %d package(s)\n", len(res.Diags), len(mod.Pkgs))
		printPackageSummary(res.Diags)
		os.Exit(1)
	}
}

// jsonDiag is the machine-readable diagnostic shape; positions stay
// root-relative so the output is stable across checkouts.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func emitJSON(res *vet.Result) {
	out := struct {
		Diagnostics []jsonDiag       `json:"diagnostics"`
		Stages      []vet.StageReads `json:"stages"`
		ParLoops    []vet.ParLoop    `json:"parloops"`
		WireTypes   []vet.WireFact   `json:"wiretypes"`
	}{
		Diagnostics: []jsonDiag{},
		Stages:      res.Stages,
		ParLoops:    res.ParLoops,
		WireTypes:   res.WireTypes,
	}
	if out.Stages == nil {
		out.Stages = []vet.StageReads{}
	}
	if out.ParLoops == nil {
		out.ParLoops = []vet.ParLoop{}
	}
	if out.WireTypes == nil {
		out.WireTypes = []vet.WireFact{}
	}
	for _, d := range res.Diags {
		out.Diagnostics = append(out.Diagnostics, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Check,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "tmi3dvet: %v\n", err)
		os.Exit(2)
	}
}

// printCounts reports one line per requested analyzer, zeros included, in
// name order — the CI-visible shape of "which checks are actually running".
func printCounts(analyzers []*vet.Analyzer, diags []vet.Diagnostic) {
	byCheck := map[string]int{}
	for _, d := range diags {
		byCheck[d.Check]++
	}
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%-12s %d\n", n, byCheck[n])
	}
}

// printPackageSummary breaks the failure total down by directory (package),
// sorted, so a red CI run names the guilty packages deterministically.
func printPackageSummary(diags []vet.Diagnostic) {
	byDir := map[string]int{}
	for _, d := range diags {
		dir := filepath.ToSlash(filepath.Dir(d.Pos.Filename))
		byDir[dir]++
	}
	dirs := make([]string, 0, len(byDir))
	for dir := range byDir {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		fmt.Fprintf(os.Stderr, "  %-28s %d\n", dir, byDir[dir])
	}
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}
