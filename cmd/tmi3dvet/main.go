// Command tmi3dvet is the repository's determinism and concurrency
// multichecker: it loads and type-checks every package in the module and runs
// the internal/vet analyzer suite (maporder, lockorder, seedpurity,
// keycoverage). A non-empty report exits 1, which is what scripts/check.sh
// gates CI on.
//
// Usage:
//
//	tmi3dvet ./...            # analyze the whole module (the only scope)
//	tmi3dvet -list            # print the analyzers and what they catch
//	tmi3dvet -c maporder ./...# run a single analyzer
//
// Suppression syntax, for sites that are order-insensitive for reasons the
// analyzer cannot prove:
//
//	//tmi3dvet:ordered <reason>   on or above a map range (maporder)
//	//tmi3dvet:nonkey <reason>    on a Config field (keycoverage)
//
// The reason string is mandatory and stale suppressions are diagnostics.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tmi3d/internal/vet"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	check := flag.String("c", "", "run only the named analyzer")
	root := flag.String("C", "", "module root (default: ascend from the working directory to go.mod)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tmi3dvet [-list] [-c analyzer] [-C moduleroot] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range vet.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := vet.All
	if *check != "" {
		analyzers = nil
		for _, a := range vet.All {
			if a.Name == *check {
				analyzers = []*vet.Analyzer{a}
			}
		}
		if analyzers == nil {
			fmt.Fprintf(os.Stderr, "tmi3dvet: unknown analyzer %q\n", *check)
			os.Exit(2)
		}
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tmi3dvet: %v\n", err)
			os.Exit(2)
		}
	}

	mod, err := vet.Load(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmi3dvet: %v\n", err)
		os.Exit(2)
	}
	diags := vet.Run(mod, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tmi3dvet: %d diagnostic(s) across %d package(s)\n", len(diags), len(mod.Pkgs))
		os.Exit(1)
	}
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}
