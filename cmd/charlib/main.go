// Command charlib characterizes the 45nm standard-cell libraries (2D and
// T-MI) with the built-in SPICE engine and writes the resulting NLDM data as
// JSON artifacts into internal/liberty/libdata, where they are embedded into
// later builds. It also prints the cell-level comparison tables of the paper
// (Tables 1, 2 and 11).
//
// Usage:
//
//	charlib [-out internal/liberty/libdata] [-tables]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"tmi3d/internal/cellgen"
	"tmi3d/internal/extract"
	"tmi3d/internal/liberty"
	"tmi3d/internal/tech"
)

func main() {
	out := flag.String("out", "internal/liberty/libdata", "output directory for library JSON")
	tables := flag.Bool("tables", false, "print Tables 1, 2 and 11")
	flag.Parse()
	log.SetFlags(0)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, mc := range []struct {
		mode tech.Mode
		file string
	}{
		{tech.Mode2D, "lib45_2d.json"},
		{tech.ModeTMI, "lib45_tmi.json"},
	} {
		log.Printf("characterizing 45nm %v library...", mc.mode)
		lib, err := liberty.Characterize45(mc.mode, liberty.CharOptions{})
		if err != nil {
			log.Fatal(err)
		}
		data, err := lib.EncodeJSON()
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*out, mc.file)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("  wrote %s (%d cells, %d bytes)", path, len(lib.Cells), len(data))
	}

	if *tables {
		printTable1()
		printTable2()
		printTable11()
	}
}

func printTable1() {
	fmt.Println("\nTable 1: cell internal parasitic RC (3D-c = top silicon as conductor)")
	fmt.Printf("%-8s %10s %10s %10s %10s %10s %10s\n", "cell", "R2D(kΩ)", "R3D", "R3D-c", "C2D(fF)", "C3D", "C3D-c")
	for _, base := range []string{"INV", "NAND2", "MUX2", "DFF"} {
		def, _ := cellgen.Template(base)
		l2 := cellgen.Generate2D(&def)
		l3 := cellgen.GenerateTMI(&def)
		e2 := extract.Extract(&def, l2, extract.Dielectric)
		e3 := extract.Extract(&def, l3, extract.Dielectric)
		e3c := extract.Extract(&def, l3, extract.Conductor)
		fmt.Printf("%-8s %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			base, e2.TotalR, e3.TotalR, e3c.TotalR, e2.TotalC, e3.TotalC, e3c.TotalC)
	}
}

func printTable2() {
	fmt.Println("\nTable 2: cell delay and internal energy, 2D vs T-MI (3D)")
	lib2 := liberty.MustDefault(tech.N45, tech.Mode2D)
	lib3 := liberty.MustDefault(tech.N45, tech.ModeTMI)
	cases := []struct {
		name       string
		slew, load float64
		slewDFF    float64
	}{
		{"fast", 7.5, 0.8, 5},
		{"medium", 37.5, 3.2, 28.1},
		{"slow", 150, 12.8, 112.5},
	}
	for _, cs := range cases {
		fmt.Printf("%s case: input slew=%gps (%gps for DFF), load=%gfF\n", cs.name, cs.slew, cs.slewDFF, cs.load)
		fmt.Printf("  %-8s %12s %12s %8s %12s %12s %8s\n", "cell", "d2D(ps)", "d3D(ps)", "ratio", "e2D(fJ)", "e3D(fJ)", "ratio")
		for _, base := range []string{"INV", "NAND2", "MUX2", "DFF"} {
			c2 := lib2.MustCell(base + "_X1")
			c3 := lib3.MustCell(base + "_X1")
			slew := cs.slew
			if c2.Seq {
				slew = cs.slewDFF
			}
			a2 := c2.WorstArc(c2.Outputs[0])
			a3 := c3.WorstArc(c3.Outputs[0])
			d2 := a2.Delay.At(slew, cs.load)
			d3 := a3.Delay.At(slew, cs.load)
			e2 := a2.Energy.At(slew, cs.load)
			e3 := a3.Energy.At(slew, cs.load)
			fmt.Printf("  %-8s %12.1f %12.1f %7.1f%% %12.3f %12.3f %7.1f%%\n",
				base, d2, d3, 100*d3/d2, e2, e3, 100*e3/e2)
		}
	}
}

func printTable11() {
	fmt.Println("\nTable 11: 7nm cell characterization (input slew 19ps, load 3.2fF)")
	rows, factors, err := liberty.Characterize7Reference()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %10s %10s %10s %10s %10s %10s %12s %12s\n",
		"cell", "cin45(fF)", "cin7", "d45(ps)", "d7", "slew45", "slew7", "power45(fJ)", "power7")
	for _, r := range rows {
		fmt.Printf("%-8s %10.3f %10.3f %10.2f %10.2f %10.2f %10.2f %12.3f %12.3f\n",
			r.Cell, r.InputCap45, r.InputCap7, r.Delay45, r.Delay7,
			r.OutSlew45, r.OutSlew7, r.CellPower45, r.CellPower7)
	}
	fmt.Printf("measured scaling factors: cap=%.3f delay=%.3f slew=%.3f energy=%.3f leakage=%.3f\n",
		factors.InputCap, factors.Delay, factors.OutSlew, factors.Energy, factors.Leakage)
	fmt.Printf("paper scaling factors:    cap=%.3f delay=%.3f slew=%.3f energy=%.3f leakage=%.3f\n",
		liberty.PaperScale7.InputCap, liberty.PaperScale7.Delay, liberty.PaperScale7.OutSlew,
		liberty.PaperScale7.Energy, liberty.PaperScale7.Leakage)
}
