#!/usr/bin/env bash
# Static-analysis and test gate for the repository: formatting, go vet,
# build, and the full test suite under the race detector. CI and pre-commit
# both run this; it must exit non-zero on any failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l cmd internal)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== parallel experiments determinism"
# The experiment engine's contract: the report is byte-identical at any -j.
# Run a real (small) experiment serially and at -j 4 and diff the outputs.
pdir=$(mktemp -d)
trap 'rm -rf "$pdir"' EXIT
go run ./cmd/experiments -scale 0.1 -only table16 -j 1 -out "$pdir/j1.txt" >/dev/null
go run ./cmd/experiments -scale 0.1 -only table16 -j 4 -out "$pdir/j4.txt" >/dev/null
if ! diff -u "$pdir/j1.txt" "$pdir/j4.txt"; then
    echo "experiments output differs between -j 1 and -j 4" >&2
    exit 1
fi

echo "== equiv smoke"
# Formal sign-off must prove the smallest benchmark's mapped netlist and pass
# the switch-level library check — and must catch an injected logic defect.
go run ./cmd/tmi3d equiv -circuit FPU -scale 0.1 -lib -format text
if go run ./cmd/tmi3d equiv -circuit FPU -scale 0.1 -corrupt swapgate >/dev/null; then
    echo "equiv failed to detect injected swapgate corruption" >&2
    exit 1
fi

echo "check.sh: all clean"
