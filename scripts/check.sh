#!/usr/bin/env bash
# Static-analysis and test gate for the repository. CI and pre-commit both run
# this; it must exit non-zero on any failure.
#
# The gates run fail-fast in cost order: formatting and stock static analysis
# first, then the custom tmi3dvet determinism/concurrency analyzers, then the
# race-detector test suite, then the end-to-end smokes (parallel determinism,
# formal equivalence, serving). Each gate opens with a named banner so a CI
# log identifies the failing stage at a glance.
set -euo pipefail
cd "$(dirname "$0")/.."

stage() {
    echo
    echo "==================================================================="
    echo "== stage: $1"
    echo "==================================================================="
}

stage gofmt
unformatted=$(gofmt -l cmd internal)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

stage govet
go vet ./...

stage build
go build ./...

stage tmi3dvet
# The repo's own analyzers: map-iteration order, lock ordering (RWMutex-mode
# aware), seed purity, cache-key coverage, per-stage key soundness
# (stagedeps), global-state purity (globalmut), parallel-loop safety over the
# flow.ParLoops anchors (parsafe), goroutine discipline (godisc), wire-format
# totality over the flow.WireTypes manifest (wiresafe), and cancellation/
# resource discipline in the serving stack (ctxdisc). A single unsuppressed
# diagnostic fails the gate; the -counts tail prints one line per analyzer so
# the log shows every check ran. Run `go run ./cmd/tmi3dvet -list` for the
# suite and the suppression syntax.
go run ./cmd/tmi3dvet -counts ./...

stage race
go test -race ./...

stage parallel-determinism
# The experiment engine's contract: the report is byte-identical at any -j.
# Run a real (small) experiment serially and at -j 4 and diff the outputs.
pdir=$(mktemp -d)
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$pdir"
}
trap cleanup EXIT
go run ./cmd/experiments -scale 0.1 -only table16 -j 1 -out "$pdir/j1.txt" >/dev/null
go run ./cmd/experiments -scale 0.1 -only table16 -j 4 -out "$pdir/j4.txt" >/dev/null
if ! diff -u "$pdir/j1.txt" "$pdir/j4.txt"; then
    echo "experiments output differs between -j 1 and -j 4" >&2
    exit 1
fi

stage intraflow-determinism
# The intra-flow parallelism contract (ROADMAP item 3): the worker budget of
# the stage loops (flow.Config.Workers) must never reach one byte of the
# report or the Verilog/DEF artifacts. Run one flow with serial loops and
# with an 8-worker fleet and diff everything.
go run ./cmd/tmi3d -circuit FPU -scale 0.1 -mode tmi -byfunc -workers 1 \
    -dump "$pdir/w1" >"$pdir/w1.txt" 2>/dev/null
go run ./cmd/tmi3d -circuit FPU -scale 0.1 -mode tmi -byfunc -workers 8 \
    -dump "$pdir/w8" >"$pdir/w8.txt" 2>/dev/null
for f in txt v def; do
    if ! diff -u "$pdir/w1.$f" "$pdir/w8.$f"; then
        echo "flow .$f output differs between -workers 1 and -workers 8" >&2
        exit 1
    fi
done
# And the parallel stage loops must be race-clean at more than one
# GOMAXPROCS shape — the scheduler interleavings differ.
for procs in 2 8; do
    GOMAXPROCS=$procs go test -race -count=1 \
        -run 'WorkersMatchSerial|ParallelStampMatchesSerial|IntraFlowWorkersByteIdentity' \
        ./internal/place ./internal/sta ./internal/route ./internal/spice \
        ./internal/opt ./internal/flow
done

stage staged-identity
# The staged flow engine's contract: byte-identical to the monolithic flow at
# any cache state. Run a 3-point clock sweep monolithically, then staged with
# a cold artifact store, then staged again fully warm (the second pass
# executes no stage bodies at all), and diff report + Verilog + DEF per point.
go build -o "$pdir/tmi3d" ./cmd/tmi3d
for clk in 0 2000 2400; do
    "$pdir/tmi3d" -circuit FPU -scale 0.1 -mode tmi -clock "$clk" -byfunc \
        -dump "$pdir/mono$clk" >"$pdir/mono$clk.txt" 2>/dev/null
done
for pass in cold warm; do
    for clk in 0 2000 2400; do
        "$pdir/tmi3d" -circuit FPU -scale 0.1 -mode tmi -clock "$clk" -byfunc \
            -stagecache "$pdir/stagecache" \
            -dump "$pdir/$pass$clk" >"$pdir/$pass$clk.txt" 2>/dev/null
        for f in txt v def; do
            if ! diff -u "$pdir/mono$clk.$f" "$pdir/$pass$clk.$f"; then
                echo "staged ($pass, clock $clk) .$f output differs from monolithic" >&2
                exit 1
            fi
        done
    done
done

stage wire-identity
# The runtime counterpart of the wiresafe proof: run one real flow through
# the staged engine, then replay every cached artifact's stored bytes
# through decode -> re-encode and diff (plus the library codec and a castore
# Put/Get round trip). Any divergence exits non-zero.
go run ./cmd/tmi3d wireid -circuit FPU -scale 0.1

stage equiv-smoke
# Formal sign-off must prove the smallest benchmark's mapped netlist and pass
# the switch-level library check — and must catch an injected logic defect.
go run ./cmd/tmi3d equiv -circuit FPU -scale 0.1 -lib -format text
if go run ./cmd/tmi3d equiv -circuit FPU -scale 0.1 -corrupt swapgate >/dev/null; then
    echo "equiv failed to detect injected swapgate corruption" >&2
    exit 1
fi

stage serve-smoke
# The serving layer's contract: a daemon answer is byte-identical to a direct
# flow.Run. Boot on an ephemeral port (with the staged engine, so the
# byte-identity check also covers staged serving), probe /healthz, fetch one
# flow result twice (cold then cached), and diff against the direct encoding
# via loadgen. Then a sequential clock sweep must show — via the stage
# metrics — that synthesis and placement executed exactly once.
go build -o "$pdir/tmi3d" ./cmd/tmi3d
go build -o "$pdir/loadgen" ./cmd/loadgen
"$pdir/tmi3d" serve -addr 127.0.0.1:0 -store "$pdir/store" \
    -stagecache "$pdir/stagecache-serve" \
    -addrfile "$pdir/addr" 2>"$pdir/serve.log" &
serve_pid=$!
for _ in $(seq 1 100); do [ -s "$pdir/addr" ] && break; sleep 0.1; done
if [ ! -s "$pdir/addr" ]; then
    echo "tmi3d serve never wrote its address:" >&2
    cat "$pdir/serve.log" >&2
    exit 1
fi
addr=$(tr -d '\n' <"$pdir/addr")
if command -v curl >/dev/null; then
    curl -sf "http://$addr/healthz" >/dev/null
fi
"$pdir/loadgen" -addr "$addr" -workers 8 -n 16 -circuit FPU -scale 0.1 \
    -verify -check
"$pdir/loadgen" -addr "$addr" -sweep 3 -circuit FPU -mode 2d -scale 0.1
kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""

echo
echo "check.sh: all clean"
