package tmi3d_test

// The benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its experiment — workload,
// parameter sweep, 2D baseline and T-MI comparison — and reports the headline
// metric alongside wall-clock cost.
//
// Circuit scale defaults to 0.15 so `go test -bench=.` finishes in minutes;
// set TMI3D_SCALE=1.0 to rebuild the paper's full-size benchmarks.

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"tmi3d/internal/circuits"
	"tmi3d/internal/core"
	"tmi3d/internal/equiv"
	"tmi3d/internal/flow"
	"tmi3d/internal/liberty"
	"tmi3d/internal/place"
	"tmi3d/internal/route"
	"tmi3d/internal/synth"
	"tmi3d/internal/tech"
	"tmi3d/internal/wlm"
)

var (
	studyMu sync.Mutex
	studies = map[float64]*core.Study{}
)

func benchScale() float64 {
	scale := 0.15
	if s := os.Getenv("TMI3D_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			scale = v
		}
	}
	return scale
}

// benchStudy returns the shared study for the current scale. The cache is
// keyed by scale — a process-wide sync.Once would silently hand a study
// built for one scale to a benchmark expecting another (the old bug when
// TMI3D_SCALE changed between `go test -bench` invocations sharing a
// test binary, or when a bench pins its own scale).
func benchStudy(b *testing.B) *core.Study {
	b.Helper()
	scale := benchScale()
	studyMu.Lock()
	defer studyMu.Unlock()
	s, ok := studies[scale]
	if !ok {
		s = core.NewStudy(scale)
		studies[scale] = s
	}
	return s
}

func BenchmarkTable01CellRC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := core.Table1()
		if len(rows) != 4 {
			b.Fatal("bad table 1")
		}
	}
}

func BenchmarkTable02CellTiming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable03MetalStack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(core.Table3()) != 4 {
			b.Fatal("bad table 3")
		}
	}
}

func BenchmarkTable04Summary45(b *testing.B) {
	s := benchStudy(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Summary(tech.N45)
		if err != nil {
			b.Fatal(err)
		}
		reportReduction(b, rows)
	}
}

func BenchmarkTable05PriorWork(b *testing.B) {
	s := benchStudy(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Table5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable06NodeSetup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = core.Table6()
	}
}

func BenchmarkTable07Summary7(b *testing.B) {
	s := benchStudy(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Summary(tech.N7)
		if err != nil {
			b.Fatal(err)
		}
		reportReduction(b, rows)
	}
}

func BenchmarkTable08PinCap(b *testing.B) {
	s := benchStudy(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Table8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable09Resistivity(b *testing.B) {
	s := benchStudy(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Table9(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable10ITRS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = core.Table10()
	}
}

func BenchmarkTable11Cell7nm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Table11(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable12Synthesis(b *testing.B) {
	s := benchStudy(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Table12(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable13Detail45(b *testing.B) {
	s := benchStudy(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Detail(tech.N45); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable14Detail7(b *testing.B) {
	s := benchStudy(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Detail(tech.N7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable15WLM(b *testing.B) {
	s := benchStudy(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Table15(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable16WirePin(b *testing.B) {
	s := benchStudy(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Table16(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable17MetalStack(b *testing.B) {
	s := benchStudy(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Table17(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig04ClockSweep(b *testing.B) {
	s := benchStudy(b)
	for i := 0; i < b.N; i++ {
		pts, err := s.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 6 {
			b.Fatal("bad fig 4")
		}
	}
}

func BenchmarkFig06WLMCurves(b *testing.B) {
	s := benchStudy(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10LayerUsage(b *testing.B) {
	s := benchStudy(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig10(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11Activity(b *testing.B) {
	s := benchStudy(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig11([]string{"AES"}); err != nil {
			b.Fatal(err)
		}
	}
}

// reportReduction attaches the headline metric (LDPC total power reduction)
// to the benchmark output.
func reportReduction(b *testing.B, rows []core.SummaryRow) {
	for _, r := range rows {
		if r.Circuit == "LDPC" {
			b.ReportMetric(-r.Total, "%power-reduction-LDPC")
		}
	}
}

// ---- Ablation benches: the design choices DESIGN.md calls out ----

// BenchmarkAblationFM quantifies what the Fiduccia–Mattheyses refinement
// buys over pure structural bisection, in placed wirelength.
func BenchmarkAblationFM(b *testing.B) {
	lib, err := liberty.Default(tech.N45, tech.Mode2D)
	if err != nil {
		b.Fatal(err)
	}
	d, err := circuits.Generate("DES", 0.15)
	if err != nil {
		b.Fatal(err)
	}
	sr, err := synth.Run(d, synth.Options{Lib: lib, WLM: wlm.BuildForMode(tech.N45, tech.Mode2D, 30000)})
	if err != nil {
		b.Fatal(err)
	}
	tt := tech.New(tech.N45, tech.Mode2D)
	for i := 0; i < b.N; i++ {
		with, err := place.Run(sr.Design, place.Options{Lib: lib, Tech: tt, TargetUtil: 0.8})
		if err != nil {
			b.Fatal(err)
		}
		without, err := place.Run(sr.Design, place.Options{Lib: lib, Tech: tt, TargetUtil: 0.8, DisableFM: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(without.HPWL()/with.HPWL(), "hpwl-ratio-noFM/FM")
	}
}

// BenchmarkAblationDetour quantifies the congestion detour model's effect on
// reported wirelength for the congestion-limited LDPC.
func BenchmarkAblationDetour(b *testing.B) {
	lib, err := liberty.Default(tech.N45, tech.Mode2D)
	if err != nil {
		b.Fatal(err)
	}
	d, err := circuits.Generate("LDPC", 0.15)
	if err != nil {
		b.Fatal(err)
	}
	sr, err := synth.Run(d, synth.Options{Lib: lib, WLM: wlm.BuildForMode(tech.N45, tech.Mode2D, 60000)})
	if err != nil {
		b.Fatal(err)
	}
	tt := tech.New(tech.N45, tech.Mode2D)
	pl, err := place.Run(sr.Design, place.Options{Lib: lib, Tech: tt, TargetUtil: 0.33})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		with, err := route.Run(pl, route.Options{Tech: tt})
		if err != nil {
			b.Fatal(err)
		}
		without, err := route.Run(pl, route.Options{Tech: tt, NoDetour: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(with.TotalLen/without.TotalLen, "wl-ratio-detour/ideal")
	}
}

// BenchmarkAblationTMIWLM re-measures the Table 15 effect as a single ratio.
func BenchmarkAblationTMIWLM(b *testing.B) {
	s := benchStudy(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Table15()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.WithWLM && r.Circuit == "LDPC" {
				b.ReportMetric(r.DeltaP, "%power-without-TMI-WLM-LDPC")
			}
		}
	}
}

// ---- Parallel experiment engine benches ----

// benchMatrix is the worker-pool workload: the full 45nm iso-performance
// comparison matrix (5 circuits × {2D, T-MI}) on a fresh study, so every
// flow actually executes (no warm study cache; the process-wide library and
// netlist caches are warm for both variants alike).
func benchMatrix(b *testing.B, workers, intra int) {
	var cfgs []flow.Config
	for _, name := range circuits.Names {
		cfgs = append(cfgs,
			flow.Config{Circuit: name, Node: tech.N45, Mode: tech.Mode2D},
			flow.Config{Circuit: name, Node: tech.N45, Mode: tech.ModeTMI})
	}
	for i := 0; i < b.N; i++ {
		s := core.NewStudy(benchScale())
		s.Workers = workers
		s.IntraWorkers = intra
		rs, err := s.RunAll(cfgs)
		if err != nil {
			b.Fatal(err)
		}
		if len(rs) != len(cfgs) || s.FlowsRun() != len(cfgs) {
			b.Fatalf("%d results, %d flows executed, want %d", len(rs), s.FlowsRun(), len(cfgs))
		}
	}
	b.ReportMetric(float64(workers), "workers")
	b.ReportMetric(float64(intra), "intra-workers")
}

// BenchmarkStudySerial is the fully serial baseline: one flow at a time,
// every stage loop on one worker.
func BenchmarkStudySerial(b *testing.B) { benchMatrix(b, 1, 1) }

// BenchmarkStudyParallel fans the same matrix across GOMAXPROCS flow workers
// (stage loops serial — the PR 3 axis); compare ns/op against
// BenchmarkStudySerial for the wall-clock speedup (BENCH_parallel.json holds
// the committed baseline).
func BenchmarkStudyParallel(b *testing.B) { benchMatrix(b, runtime.GOMAXPROCS(0), 1) }

// BenchmarkStudyIntraFlow runs the matrix one flow at a time with the full
// intra-flow worker fleet — the ROADMAP item 3 axis: speedup inside a single
// flow's stage loops, byte-identical to the serial baseline.
func BenchmarkStudyIntraFlow(b *testing.B) { benchMatrix(b, 1, runtime.GOMAXPROCS(0)) }

// BenchmarkEquiv measures the formal sign-off cost on the DES mapped netlist:
// AIG compilation, register correspondence, and structural proof of every
// compare point (a clean synthesis run needs zero SAT calls).
func BenchmarkEquiv(b *testing.B) {
	lib, err := liberty.Default(tech.N45, tech.Mode2D)
	if err != nil {
		b.Fatal(err)
	}
	d, err := circuits.Generate("DES", 0.15)
	if err != nil {
		b.Fatal(err)
	}
	sr, err := synth.Run(d, synth.Options{Lib: lib, WLM: wlm.BuildForMode(tech.N45, tech.Mode2D, 60000)})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rep, err := equiv.Check(d, sr.Design, equiv.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Equivalent() {
			b.Fatal(rep.Err())
		}
		b.ReportMetric(float64(rep.Points), "compare-points")
		b.ReportMetric(float64(rep.Structural), "structural")
	}
}

// BenchmarkSAT measures the CDCL core on the canonical UNSAT stress test:
// the pigeonhole principle with 8 pigeons and 7 holes, which has no short
// resolution proof and so exercises clause learning, VSIDS and restarts.
func BenchmarkSAT(b *testing.B) {
	const holes = 7
	var conflicts int64
	for i := 0; i < b.N; i++ {
		s := equiv.NewSolver()
		vars := make([][]int, holes+1)
		for p := range vars {
			vars[p] = make([]int, holes)
			for h := range vars[p] {
				vars[p][h] = s.NewVar()
			}
			cl := make([]equiv.SLit, holes)
			for h := range vars[p] {
				cl[h] = equiv.MkSLit(vars[p][h], false)
			}
			s.AddClause(cl...)
		}
		for h := 0; h < holes; h++ {
			for p1 := 0; p1 <= holes; p1++ {
				for p2 := p1 + 1; p2 <= holes; p2++ {
					s.AddClause(equiv.MkSLit(vars[p1][h], true), equiv.MkSLit(vars[p2][h], true))
				}
			}
		}
		if s.Solve() {
			b.Fatal("pigeonhole must be UNSAT")
		}
		conflicts = s.Stats.Conflicts
	}
	b.ReportMetric(float64(conflicts), "conflicts")
}
