# Convenience targets; scripts/check.sh is the canonical CI gate.
.PHONY: check test build fmt lint equiv

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

fmt:
	gofmt -w cmd internal

# Design-integrity lint over every benchmark, both libraries, and both
# layout sets (see internal/lint).
lint:
	@go run ./cmd/tmi3d lint -all

# Formal equivalence sign-off: LEC over every benchmark plus the
# switch-level check of the folded T-MI library (see internal/equiv).
equiv:
	@go run ./cmd/tmi3d equiv -all
