# Convenience targets; scripts/check.sh is the canonical CI gate.
.PHONY: check test build fmt lint

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

fmt:
	gofmt -w cmd internal

# Design-integrity lint over every benchmark, both libraries, and both
# layout sets (see internal/lint).
lint:
	@go run ./cmd/tmi3d lint -all
