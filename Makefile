# Convenience targets; scripts/check.sh is the canonical CI gate.
.PHONY: check test build fmt lint vet-custom equiv serve loadgen bench-serve bench-vet bench-parallel bench-stage

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

fmt:
	gofmt -w cmd internal

# Design-integrity lint over every benchmark, both libraries, and both
# layout sets (see internal/lint).
lint:
	@go run ./cmd/tmi3d lint -all

# The repo's own static analyzers (ctxdisc, globalmut, godisc, keycoverage,
# lockorder, maporder, parsafe, seedpurity, stagedeps, wiresafe) over every
# package with per-analyzer diagnostic counts (see internal/vet and
# cmd/tmi3dvet).
vet-custom:
	go run ./cmd/tmi3dvet -counts ./...

# Formal equivalence sign-off: LEC over every benchmark plus the
# switch-level check of the folded T-MI library (see internal/equiv).
equiv:
	@go run ./cmd/tmi3d equiv -all

# PPA-as-a-service daemon on :8080 with a local persistent store
# (see internal/serve and the serving-layer section of DESIGN.md).
serve:
	go run ./cmd/tmi3d serve -addr 127.0.0.1:8080 -store tmi3d-store

# Drive a running daemon: 64 workers, hot/cold mix, byte-identity check.
loadgen:
	go run ./cmd/loadgen -addr 127.0.0.1:8080 -workers 64 -n 256 \
		-scale 0.1 -cold 0.05 -verify -check

bench-serve:
	go test ./internal/serve -run '^$$' -bench BenchmarkServe -benchmem

bench-vet:
	go test ./internal/vet -run '^$$' -bench BenchmarkVet

# The parallel-driver benches: serial baseline, flow-pool fan-out (PR 3),
# and the intra-flow stage-loop fleet (ROADMAP item 3). Compare ns/op;
# BENCH_parallel.json holds the committed baseline.
bench-parallel:
	go test . -run '^$$' -bench 'BenchmarkStudy(Serial|Parallel|IntraFlow)' -benchtime 1x

# The staged flow engine's reuse on a clock sweep: monolithic vs cold vs
# warm staged runs, measured in stage-body executions per sweep point.
# BENCH_stage.json holds the committed baseline.
bench-stage:
	go test ./internal/stage -run '^$$' -bench BenchmarkStagedSweep -benchtime 1x
